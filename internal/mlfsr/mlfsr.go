// Package mlfsr implements maximal-length linear feedback shift registers
// and the index-permutation generator built on them (paper §5.2.3):
// Algorithm 6 must visit every iTuple of the cartesian product exactly once
// in a pseudo-random order without materialising a permutation of up to
// millions of indices. An l-bit maximal LFSR cycles through every value in
// {1, …, 2^l − 1} exactly once per period; values outside the target index
// set are simply discarded.
package mlfsr

import (
	"errors"
	"fmt"
	"math/bits"
)

// taps[l] is a tap mask producing a maximal-length sequence for an l-bit
// Fibonacci LFSR (primitive polynomials over GF(2), taken from the standard
// Xilinx/Alfke table). Entry l has its bits numbered 1..l; bit k set means
// stage k feeds the XOR.
var taps = map[uint]uint64{
	2:  (1 << 1) | (1 << 0),                       // x^2 + x + 1
	3:  (1 << 2) | (1 << 1),                       // x^3 + x^2 + 1
	4:  (1 << 3) | (1 << 2),                       // x^4 + x^3 + 1
	5:  (1 << 4) | (1 << 2),                       // x^5 + x^3 + 1
	6:  (1 << 5) | (1 << 4),                       // x^6 + x^5 + 1
	7:  (1 << 6) | (1 << 5),                       // x^7 + x^6 + 1
	8:  (1 << 7) | (1 << 5) | (1 << 4) | (1 << 3), // x^8 + x^6 + x^5 + x^4 + 1
	9:  (1 << 8) | (1 << 4),
	10: (1 << 9) | (1 << 6),
	11: (1 << 10) | (1 << 8),
	12: (1 << 11) | (1 << 5) | (1 << 3) | (1 << 0),
	13: (1 << 12) | (1 << 3) | (1 << 2) | (1 << 0),
	14: (1 << 13) | (1 << 4) | (1 << 2) | (1 << 0),
	15: (1 << 14) | (1 << 13),
	16: (1 << 15) | (1 << 14) | (1 << 12) | (1 << 3),
	17: (1 << 16) | (1 << 13),
	18: (1 << 17) | (1 << 10),
	19: (1 << 18) | (1 << 5) | (1 << 1) | (1 << 0),
	20: (1 << 19) | (1 << 16),
	21: (1 << 20) | (1 << 18),
	22: (1 << 21) | (1 << 20),
	23: (1 << 22) | (1 << 17),
	24: (1 << 23) | (1 << 22) | (1 << 21) | (1 << 16),
	25: (1 << 24) | (1 << 21),
	26: (1 << 25) | (1 << 5) | (1 << 1) | (1 << 0),
	27: (1 << 26) | (1 << 4) | (1 << 1) | (1 << 0),
	28: (1 << 27) | (1 << 24),
	29: (1 << 28) | (1 << 26),
	30: (1 << 29) | (1 << 5) | (1 << 3) | (1 << 0),
	31: (1 << 30) | (1 << 27),
	32: (1 << 31) | (1 << 21) | (1 << 1) | (1 << 0),
	33: (1 << 32) | (1 << 19),
	34: (1 << 33) | (1 << 26) | (1 << 1) | (1 << 0),
	35: (1 << 34) | (1 << 32),
	36: (1 << 35) | (1 << 24),
	37: (1 << 36) | (1 << 4) | (1 << 3) | (1 << 2) | (1 << 1) | (1 << 0),
	38: (1 << 37) | (1 << 5) | (1 << 4) | (1 << 0),
	39: (1 << 38) | (1 << 34),
	40: (1 << 39) | (1 << 37) | (1 << 20) | (1 << 18),
}

// MaxBits is the largest supported register width.
const MaxBits = 40

// LFSR is a Fibonacci-configuration maximal-length linear feedback shift
// register over l bits. Its Next method emits each value of
// {1, …, 2^l − 1} exactly once per period.
type LFSR struct {
	state uint64
	mask  uint64
	tap   uint64
	bitsN uint
}

// New constructs an l-bit maximal LFSR seeded with seed. The seed is reduced
// into {1, …, 2^l − 1}; an all-zero reduction is replaced with 1 (zero is
// the lone fixed point of an LFSR and must be avoided).
func New(l uint, seed uint64) (*LFSR, error) {
	tap, ok := taps[l]
	if !ok {
		return nil, fmt.Errorf("mlfsr: unsupported register width %d (need 2..%d)", l, MaxBits)
	}
	mask := uint64(1)<<l - 1
	s := seed & mask
	if s == 0 {
		s = 1
	}
	return &LFSR{state: s, mask: mask, tap: tap, bitsN: l}, nil
}

// Bits returns the register width.
func (r *LFSR) Bits() uint { return r.bitsN }

// Period returns 2^l − 1, the number of distinct outputs per cycle.
func (r *LFSR) Period() uint64 { return r.mask }

// Next advances the register one step and returns the new state, a value in
// {1, …, 2^l − 1}. The register is a Fibonacci left-shift LFSR: the new low
// bit is the parity of the tapped stages, realising the recurrence of the
// primitive polynomial the tap mask encodes.
func (r *LFSR) Next() uint64 {
	fb := uint64(bits.OnesCount64(r.state&r.tap) & 1)
	r.state = (r.state<<1 | fb) & r.mask
	return r.state
}

// Permutation iterates a pseudo-random permutation of {0, …, n−1} using the
// smallest maximal LFSR whose period covers n; out-of-range register states
// are skipped (§5.2.3: "A generated number that is outside I is simply
// discarded"). The traversal visits every index exactly once.
type Permutation struct {
	lfsr    *LFSR
	n       uint64
	count   uint64
	first   uint64
	started bool
}

// NewPermutation builds a permutation of {0, …, n−1} deterministically from
// seed. All coprocessors seeding with the same value generate the same order
// (§5.3.5 parallelism).
func NewPermutation(n uint64, seed uint64) (*Permutation, error) {
	if n == 0 {
		return nil, errors.New("mlfsr: empty index set")
	}
	if n == 1 {
		return &Permutation{n: 1}, nil
	}
	l := uint(bits.Len64(n)) // smallest l with 2^l - 1 >= n, see below
	if uint64(1)<<l-1 < n {
		l++
	}
	if l < 2 {
		l = 2
	}
	r, err := New(l, seed)
	if err != nil {
		return nil, err
	}
	return &Permutation{lfsr: r, n: n, first: r.state}, nil
}

// N returns the size of the index set.
func (p *Permutation) N() uint64 { return p.n }

// Next returns the next index of the permutation and true, or 0 and false
// once all n indices have been emitted. The register states s₀ (the seed),
// s₁, s₂, … map to indices s−1; out-of-range states are skipped.
func (p *Permutation) Next() (uint64, bool) {
	if p.count >= p.n {
		return 0, false
	}
	if p.lfsr == nil { // n == 1
		p.count++
		return 0, true
	}
	for {
		var v uint64
		if !p.started {
			v = p.first
			p.started = true
		} else {
			v = p.lfsr.Next()
			if v == p.first {
				// Full period traversed: for a maximal sequence this only
				// happens after all n indices were emitted, but guard
				// against silent livelock with a non-maximal tap table bug.
				return 0, false
			}
		}
		if v-1 < p.n {
			p.count++
			return v - 1, true
		}
	}
}
