package core

import (
	"fmt"

	"ppj/internal/costmodel"
	"ppj/internal/mlfsr"
	"ppj/internal/sim"

	"ppj/internal/relation"
)

// Join6OnePass answers a Chapter 6 open question — "Algorithm 6 ... makes
// two passes over the cartesian product of the two input tables. A one pass
// algorithm would dramatically reduce the I/O overhead. Does a one pass
// algorithm exist?" — in the affirmative for the case where the join size S
// is known a priori. Algorithm 6 spends its first pass only to learn S
// (which sizes the flush schedule and the decoy filter); when S is public
// beforehand — fixed by contract, known from a previous run on the same
// inputs, or published by the data owners — the screening pass is
// unnecessary and the cost drops from Eqn 5.7's 2L + … to L + ….
//
// If knownS understates the true join size the coprocessor detects it (the
// segment buffers or the final accounting overflow) and returns an error
// rather than emitting a wrong or leaky result; overstating S costs only
// extra decoys. The access pattern is a function of (L, knownS, M, ε).
func Join6OnePass(t *sim.Coprocessor, tables []sim.Table, pred relation.MultiPredicate, eps float64, knownS int64) (Join6Report, error) {
	if eps < 0 || eps > 1 {
		return Join6Report{}, fmt.Errorf("%w: epsilon %g outside [0,1]", errInvalid, eps)
	}
	if knownS < 0 {
		return Join6Report{}, fmt.Errorf("%w: negative S", errInvalid)
	}
	outSchema, cart, err := prepCh5(t, tables)
	if err != nil {
		return Join6Report{}, err
	}
	m := int64(t.Memory())
	release, err := t.Grant(t.Memory())
	if err != nil {
		return Join6Report{}, fmt.Errorf("core: one-pass algorithm 6: %w", err)
	}
	defer release()
	t.ResetStats()

	host := t.Host()
	l := cart.Size()
	out := host.FreshRegion("alg6op.out", 0)
	payloadSize := outSchema.TupleSize()

	// M >= S: collect everything in one sequential pass.
	if knownS <= m {
		collected := make([][]byte, 0, knownS)
		var seen int64
		for i := int64(0); i < l; i++ {
			row, err := cart.Read(i)
			if err != nil {
				return Join6Report{}, err
			}
			t.ChargePredicate()
			if pred.Satisfy(row) {
				seen++
				if seen > knownS {
					return Join6Report{}, fmt.Errorf("core: one-pass algorithm 6: join exceeds declared S=%d", knownS)
				}
				payload, err := joinPayload(outSchema, row...)
				if err != nil {
					return Join6Report{}, err
				}
				collected = append(collected, wrapReal(payload))
			}
		}
		if seen != knownS {
			return Join6Report{}, fmt.Errorf("core: one-pass algorithm 6: join has %d results, declared S=%d", seen, knownS)
		}
		for i, cell := range collected {
			if err := t.Put(out, int64(i), cell); err != nil {
				return Join6Report{}, err
			}
		}
		if knownS > 0 {
			if err := t.RequestDisk(out, 0, knownS); err != nil {
				return Join6Report{}, err
			}
		}
		return Join6Report{
			Result: Result{
				Output:    sim.Table{Region: out, N: knownS, Schema: outSchema},
				OutputLen: knownS,
				Stats:     t.Stats(),
			},
			S: knownS, NStar: l, Segments: 1,
		}, nil
	}

	nStar := costmodel.OptimalSegment(l, knownS, m, eps)
	if nStar < 1 {
		nStar = 1
	}
	segments := (l + nStar - 1) / nStar

	perm, err := mlfsr.NewPermutation(uint64(l), t.Rand().Uint64())
	if err != nil {
		return Join6Report{}, err
	}
	raw := host.FreshRegion("alg6op.raw", int(segments*m))
	buf := make([][]byte, 0, m)
	blemished := false
	rawPos := int64(0)
	var total int64
	flush := func() error {
		for _, cell := range buf {
			if err := t.Put(raw, rawPos, cell); err != nil {
				return err
			}
			rawPos++
		}
		for j := int64(len(buf)); j < m; j++ {
			if err := t.Put(raw, rawPos, wrapDecoy(payloadSize)); err != nil {
				return err
			}
			rawPos++
		}
		buf = buf[:0]
		return nil
	}
	for k := int64(0); k < l; k++ {
		idx, ok := perm.Next()
		if !ok {
			return Join6Report{}, fmt.Errorf("core: one-pass algorithm 6: permutation exhausted")
		}
		row, err := cart.Read(int64(idx))
		if err != nil {
			return Join6Report{}, err
		}
		t.ChargePredicate()
		if pred.Satisfy(row) {
			total++
			if int64(len(buf)) < m {
				payload, err := joinPayload(outSchema, row...)
				if err != nil {
					return Join6Report{}, err
				}
				buf = append(buf, wrapReal(payload))
			} else {
				blemished = true
			}
		}
		if (k+1)%nStar == 0 || k+1 == l {
			if err := flush(); err != nil {
				return Join6Report{}, err
			}
		}
	}
	if total != knownS {
		return Join6Report{}, fmt.Errorf("core: one-pass algorithm 6: join has %d results, declared S=%d", total, knownS)
	}
	if blemished {
		// Salvage still needs the rescans; one-pass only holds on the
		// 1−ε-probability clean path.
		outPos, err := multiScan(t, cart, outSchema, pred, out, m)
		if err != nil {
			return Join6Report{}, err
		}
		return Join6Report{
			Result: Result{
				Output:    sim.Table{Region: out, N: outPos, Schema: outSchema},
				OutputLen: outPos,
				Stats:     t.Stats(),
				Blemished: true,
			},
			S: knownS, NStar: nStar, Segments: segments,
		}, nil
	}
	filtered, err := filterDecoys(t, raw, rawPos, knownS, "alg6op.kept")
	if err != nil {
		return Join6Report{}, err
	}
	if err := t.RequestCopyOut(out, 0, filtered, 0, knownS); err != nil {
		return Join6Report{}, err
	}
	return Join6Report{
		Result: Result{
			Output:    sim.Table{Region: out, N: knownS, Schema: outSchema},
			OutputLen: knownS,
			Stats:     t.Stats(),
		},
		S: knownS, NStar: nStar, Segments: segments,
	}, nil
}
