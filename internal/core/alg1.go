package core

import (
	"fmt"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// Join1 runs Algorithm 1 (§4.4.1), the general join for secure coprocessors
// with small memories. For every a ∈ A it streams B in rounds of N tuples,
// writing one oTuple (a real join or a decoy) per comparison into the second
// half of a 2N-cell scratch array on the host, and obliviously sorting the
// array after every round with real tuples given priority. Because N is the
// maximum number of B tuples joining any a, all real results accumulate in
// the first N cells, which H persists as the output for a. The output is
// therefore exactly N·|A| oTuples, and every host access is a function of
// (|A|, |B|, N) alone.
//
// N must be a correct upper bound on the per-tuple match count
// (relation.MaxMatches computes it exactly; the paper notes a safe N can be
// found by a nested loop pass that outputs nothing, §4.3).
func Join1(t *sim.Coprocessor, a, b sim.Table, pred relation.Predicate, n int64) (Result, error) {
	if err := validateCh4(a, b, n); err != nil {
		return Result{}, err
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	// Algorithm 1 keeps only the current A tuple and the oTuple under
	// construction inside T — the uncharged "+2" staging slots of §4.1.
	// Scratch lives on the host, so no device memory is granted.
	t.ResetStats()

	host := t.Host()
	scratch := host.FreshRegion("alg1.scratch", int(2*n))
	out := host.FreshRegion("alg1.out", int(n*a.N))
	payloadSize := outSchema.TupleSize()

	// One decoy plaintext serves every decoy put; each batched put seals it
	// freshly, so the host still sees independent ciphertexts.
	decoy := wrapDecoy(payloadSize)
	decoyFill := make([][]byte, 2*n)
	for j := range decoyFill {
		decoyFill[j] = decoy
	}

	for ai := int64(0); ai < a.N; ai++ {
		// put 2N encrypted decoy tuples to scratch[].
		if err := t.PutRange(scratch, 0, decoyFill); err != nil {
			return Result{}, err
		}
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return Result{}, err
		}
		// Stream B in rounds of up to N tuples: one batched read-modify-write
		// into scratch[N..2N), then the oblivious sort — the same get/put
		// interleaving and sort schedule as the per-cell loop.
		for bi0 := int64(0); bi0 < b.N; bi0 += n {
			cnt := min64(n, b.N-bi0)
			err := t.TransformRange(scratch, n, b.Region, bi0, cnt, func(k int64, pt []byte) ([]byte, error) {
				bT, err := b.Schema.Decode(pt)
				if err != nil {
					return nil, fmt.Errorf("core: decoding B[%d]: %w", bi0+k, err)
				}
				t.ChargePredicate()
				if pred.Match(aT, bT) {
					payload, err := joinPayload(outSchema, aT, bT)
					if err != nil {
						return nil, err
					}
					return wrapReal(payload), nil
				}
				return decoy, nil
			})
			if err != nil {
				return Result{}, err
			}
			if err := oblivious.Sort(t, scratch, 2*n, oTupleFirst); err != nil {
				return Result{}, err
			}
		}
		// Request H to write the first N cells of scratch[] to disk.
		if err := t.RequestCopyOut(out, ai*n, scratch, 0, n); err != nil {
			return Result{}, err
		}
	}
	return Result{
		Output:    sim.Table{Region: out, N: n * a.N, Schema: outSchema},
		OutputLen: n * a.N,
		Stats:     t.Stats(),
	}, nil
}

// Join1Transfers is the exact transfer count of this implementation of
// Algorithm 1, the measured analogue of the paper's
// |A| + 2N|A| + 2|A||B| + 2|A||B|(log₂ 2N)² (which assumes 2N is a power of
// two and approximates the bitonic comparator count).
func Join1Transfers(aN, bN, n int64) int64 {
	sortsPerA := bN / n
	if bN%n != 0 {
		sortsPerA++
	}
	perA := 2*n + // initial decoys
		1 + // get a  (amortised below by multiplying |A|)
		2*bN + // get b + put scratch per B tuple
		sortsPerA*oblivious.SortTransfers(2*n)
	return aN * perA
}

// Join1Variant runs the §4.4.2 variant: for each a ∈ A it writes all |B|
// oTuples to host memory and performs a single oblivious sort of |B| cells,
// keeping the first N. Dominated by Algorithm 1 for small α = N/|B|;
// implemented for the performance-relationship experiments.
func Join1Variant(t *sim.Coprocessor, a, b sim.Table, pred relation.Predicate, n int64) (Result, error) {
	if err := validateCh4(a, b, n); err != nil {
		return Result{}, err
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	t.ResetStats()

	host := t.Host()
	scratch := host.FreshRegion("alg1v.scratch", int(b.N))
	out := host.FreshRegion("alg1v.out", int(n*a.N))
	payloadSize := outSchema.TupleSize()

	decoy := wrapDecoy(payloadSize)
	for ai := int64(0); ai < a.N; ai++ {
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return Result{}, err
		}
		err = t.TransformRange(scratch, 0, b.Region, 0, b.N, func(bi int64, pt []byte) ([]byte, error) {
			bT, err := b.Schema.Decode(pt)
			if err != nil {
				return nil, fmt.Errorf("core: decoding B[%d]: %w", bi, err)
			}
			t.ChargePredicate()
			if pred.Match(aT, bT) {
				payload, err := joinPayload(outSchema, aT, bT)
				if err != nil {
					return nil, err
				}
				return wrapReal(payload), nil
			}
			return decoy, nil
		})
		if err != nil {
			return Result{}, err
		}
		if err := oblivious.Sort(t, scratch, b.N, oTupleFirst); err != nil {
			return Result{}, err
		}
		if err := t.RequestCopyOut(out, ai*n, scratch, 0, n); err != nil {
			return Result{}, err
		}
	}
	return Result{
		Output:    sim.Table{Region: out, N: n * a.N, Schema: outSchema},
		OutputLen: n * a.N,
		Stats:     t.Stats(),
	}, nil
}

func validateCh4(a, b sim.Table, n int64) error {
	if a.N <= 0 || b.N <= 0 {
		return fmt.Errorf("%w: empty input relation", errInvalid)
	}
	if n <= 0 {
		return fmt.Errorf("%w: match bound N must be positive (use relation.MaxMatches, or 1 when no tuple matches)", errInvalid)
	}
	if n > b.N {
		return fmt.Errorf("%w: match bound N=%d exceeds |B|=%d", errInvalid, n, b.N)
	}
	return nil
}
