package core

import (
	"testing"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// testEnv bundles a host/coprocessor pair with two loaded relations.
type testEnv struct {
	h    *sim.Host
	t    *sim.Coprocessor
	relA *relation.Relation
	relB *relation.Relation
	tabA sim.Table
	tabB sim.Table
}

func newEnv(t *testing.T, mem int, seed uint64, relA, relB *relation.Relation) *testEnv {
	t.Helper()
	h := sim.NewHost(1 << 18)
	cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{h: h, t: cop, relA: relA, relB: relB}
	if relA != nil {
		env.tabA, err = sim.LoadTable(h, cop.Sealer(), "A", relA)
		if err != nil {
			t.Fatal(err)
		}
	}
	if relB != nil {
		env.tabB, err = sim.LoadTable(h, cop.Sealer(), "B", relB)
		if err != nil {
			t.Fatal(err)
		}
	}
	return env
}

// keyEqui builds the standard equijoin predicate over the keyed schema.
func keyEqui(t *testing.T, a, b *relation.Relation) *relation.Equi {
	t.Helper()
	eq, err := relation.NewEqui(a.Schema, "key", b.Schema, "key")
	if err != nil {
		t.Fatal(err)
	}
	return eq
}

// checkJoin asserts that res decodes to exactly the reference join of the
// env's relations under pred.
func checkJoin(t *testing.T, env *testEnv, res Result, pred relation.Predicate) {
	t.Helper()
	got, err := DecodeOutput(env.t, res)
	if err != nil {
		t.Fatalf("decode output: %v", err)
	}
	want := relation.ReferenceJoin(env.relA, env.relB, pred)
	if !relation.SameMultiset(got, want) {
		t.Fatalf("join result mismatch: got %d rows, want %d rows", got.Len(), want.Len())
	}
}

// genJoinSized builds a pair of keyed relations with an exact join size s:
// A has nA distinct keys 0..nA-1; the first s B rows hit keys i mod nA with
// each key used at most once per... each B row matches exactly one A row, so
// the join size is exactly s. The remaining B rows use non-matching keys.
// Payloads and the positions of matching rows vary with seed.
func genJoinSized(seed uint64, nA, nB, s int) (*relation.Relation, *relation.Relation) {
	if s > nB || s > nA*nB {
		panic("bad join size")
	}
	rng := relation.NewRand(seed)
	a := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < nA; i++ {
		a.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	b := relation.NewRelation(relation.KeyedSchema())
	rows := make([]relation.Tuple, 0, nB)
	for j := 0; j < s; j++ {
		rows = append(rows, relation.Tuple{
			relation.IntValue(int64(j % nA)),
			relation.IntValue(rng.Int64N(1 << 30)),
		})
	}
	for j := s; j < nB; j++ {
		rows = append(rows, relation.Tuple{
			relation.IntValue(int64(nA) + rng.Int64N(1<<20)),
			relation.IntValue(rng.Int64N(1 << 30)),
		})
	}
	// Shuffle row positions so the pair of inputs differs structurally.
	for i := len(rows) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		rows[i], rows[j] = rows[j], rows[i]
	}
	for _, r := range rows {
		b.MustAppend(r)
	}
	return a, b
}

func TestOTupleEnvelope(t *testing.T) {
	real := wrapReal([]byte{1, 2, 3})
	decoy := wrapDecoy(3)
	if len(real) != len(decoy) {
		t.Fatal("real and decoy oTuples differ in size")
	}
	if !IsReal(real) || IsReal(decoy) {
		t.Fatal("flags wrong")
	}
	if string(Payload(real)) != "\x01\x02\x03" {
		t.Fatalf("payload = %v", Payload(real))
	}
	if IsReal(nil) {
		t.Fatal("empty cell is real")
	}
}

func TestDecodeOutputDropsDecoys(t *testing.T) {
	env := newEnv(t, 8, 1, nil, nil)
	schema := relation.KeyedSchema()
	region := env.h.MustCreateRegion("mix", 3)
	row := relation.Tuple{relation.IntValue(5), relation.IntValue(6)}
	if err := env.t.Put(region, 0, wrapReal(schema.MustEncode(row))); err != nil {
		t.Fatal(err)
	}
	if err := env.t.Put(region, 1, wrapDecoy(schema.TupleSize())); err != nil {
		t.Fatal(err)
	}
	if err := env.t.Put(region, 2, wrapReal(schema.MustEncode(row))); err != nil {
		t.Fatal(err)
	}
	res := Result{Output: sim.Table{Region: region, N: 3, Schema: schema}, OutputLen: 3}
	got, err := DecodeOutput(env.t, res)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Rows[0][0].I != 5 {
		t.Fatalf("decoded %d rows", got.Len())
	}
}
