package core

import (
	"fmt"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// Join2 runs Algorithm 2 (§4.4.3), the general join for secure coprocessors
// with larger memories. For every a ∈ A it scans B a total of
// γ = max(1, ⌈N/(M−δ)⌉) times; pass i collects the i-th group of ⌈N/γ⌉
// matching tuples in T's memory and flushes exactly that many oTuples
// (padded with decoys) at the end of the pass. Unlike a blocked nested loop,
// the partitioning is over the matched tuples, not the input (§4.4.3).
//
// delta is the §4.4.3 bookkeeping allowance δ (memory reserved for counters
// and the current input tuples); the usable result buffer is M−delta tuples.
func Join2(t *sim.Coprocessor, a, b sim.Table, pred relation.Predicate, n int64, delta int64) (Result, error) {
	if err := validateCh4(a, b, n); err != nil {
		return Result{}, err
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	usable := int64(t.Memory()) - delta
	if usable < 1 {
		return Result{}, fmt.Errorf("%w: no memory left after δ=%d of M=%d", errInvalid, delta, t.Memory())
	}
	gamma := (n + usable - 1) / usable
	if gamma < 1 {
		gamma = 1
	}
	blk := (n + gamma - 1) / gamma

	release, err := t.Grant(int(blk))
	if err != nil {
		return Result{}, fmt.Errorf("core: algorithm 2: %w", err)
	}
	defer release()
	t.ResetStats()

	host := t.Host()
	out := host.FreshRegion("alg2.out", int(gamma*blk*a.N))
	payloadSize := outSchema.TupleSize()
	outPos := int64(0)

	for ai := int64(0); ai < a.N; ai++ {
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return Result{}, err
		}
		last := int64(-1) // position of the last matched B tuple
		for pass := int64(0); pass < gamma; pass++ {
			joined := make([][]byte, 0, blk) // lives in T's memory (Granted)
			scanErr := t.ScanRange(b.Region, 0, b.N, func(bi int64, pt []byte) error {
				bT, err := b.Schema.Decode(pt)
				if err != nil {
					return fmt.Errorf("core: decoding B[%d]: %w", bi, err)
				}
				// The predicate is evaluated for every tuple regardless of
				// whether the result can still be stored (Fixed Time).
				t.ChargePredicate()
				matched := pred.Match(aT, bT)
				if bi > last && int64(len(joined)) < blk && matched {
					payload, err := joinPayload(outSchema, aT, bT)
					if err != nil {
						return err
					}
					joined = append(joined, wrapReal(payload))
					last = bi
				}
				return nil
			})
			if scanErr != nil {
				return Result{}, scanErr
			}
			// Pad to blk and flush: the output per pass has fixed size.
			for int64(len(joined)) < blk {
				joined = append(joined, wrapDecoy(payloadSize))
			}
			if err := t.PutRange(out, outPos, joined); err != nil {
				return Result{}, err
			}
			outPos += blk
			if err := t.RequestDisk(out, outPos-blk, blk); err != nil {
				return Result{}, err
			}
		}
	}
	return Result{
		Output:    sim.Table{Region: out, N: outPos, Schema: outSchema},
		OutputLen: outPos,
		Stats:     t.Stats(),
	}, nil
}

// Join2Transfers is the exact transfer count of this implementation:
// |A|·(1 + γ·|B| + γ·blk), the measured analogue of the paper's
// |A| + N|A| + γ|A||B| (which writes γ·blk ≈ N).
func Join2Transfers(aN, bN, n, m, delta int64) int64 {
	usable := m - delta
	gamma := (n + usable - 1) / usable
	if gamma < 1 {
		gamma = 1
	}
	blk := (n + gamma - 1) / gamma
	return aN * (1 + gamma*bN + gamma*blk)
}

// Gamma2 exposes the pass count Algorithm 2 would use for a given N, M, δ.
func Gamma2(n, m, delta int64) int64 {
	usable := m - delta
	if usable < 1 {
		return 0
	}
	g := (n + usable - 1) / usable
	if g < 1 {
		g = 1
	}
	return g
}
