package core

import (
	"testing"
	"testing/quick"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// TestPipelineProperty drives random shapes through the full encrypted
// pipeline — generate, load, join with every algorithm, decode — and
// checks the result against the reference join every time.
func TestPipelineProperty(t *testing.T) {
	type shape struct {
		NA, NB   uint8
		KeySpace uint8
		Mem      uint8
		Seed     uint64
	}
	f := func(sh shape) bool {
		nA := int(sh.NA)%10 + 2
		nB := int(sh.NB)%14 + 2
		keySpace := int64(sh.KeySpace)%8 + 2
		mem := int(sh.Mem)%8 + 1
		relA := relation.GenKeyed(relation.NewRand(sh.Seed), nA, keySpace)
		relB := relation.GenKeyed(relation.NewRand(sh.Seed^0xABCD), nB, keySpace)
		eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
		if err != nil {
			return false
		}
		want := relation.ReferenceJoin(relA, relB, eq)
		n := int64(relation.MaxMatches(relA, relB, eq))
		if n == 0 {
			n = 1
		}
		for _, alg := range []string{"alg1", "alg2", "alg3", "alg4", "alg5", "alg6", "alg7"} {
			h := sim.NewHost(0)
			cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: sh.Seed | 1})
			if err != nil {
				return false
			}
			tabA, err := sim.LoadTable(h, cop.Sealer(), "A", relA)
			if err != nil {
				return false
			}
			tabB, err := sim.LoadTable(h, cop.Sealer(), "B", relB)
			if err != nil {
				return false
			}
			var res Result
			switch alg {
			case "alg1":
				res, err = Join1(cop, tabA, tabB, eq, n)
			case "alg2":
				res, err = Join2(cop, tabA, tabB, eq, n, 0)
			case "alg3":
				res, err = Join3(cop, tabA, tabB, eq, n, false)
			case "alg4":
				res, err = Join4(cop, []sim.Table{tabA, tabB}, relation.Pairwise(eq))
			case "alg5":
				res, err = Join5(cop, []sim.Table{tabA, tabB}, relation.Pairwise(eq))
			case "alg6":
				var rep Join6Report
				rep, err = Join6(cop, []sim.Table{tabA, tabB}, relation.Pairwise(eq), 1e-6)
				res = rep.Result
			case "alg7":
				res, err = Join7(cop, tabA, tabB, eq)
			}
			if err != nil {
				t.Logf("%s failed on %+v: %v", alg, sh, err)
				return false
			}
			got, err := DecodeOutput(cop, res)
			if err != nil {
				t.Logf("%s decode failed on %+v: %v", alg, sh, err)
				return false
			}
			if !relation.SameMultiset(got, want) {
				t.Logf("%s mismatch on %+v: got %d want %d rows", alg, sh, got.Len(), want.Len())
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCh4PrivacyAcrossMemorySizes pins that Algorithm 2's trace depends on
// M (a public device parameter) but never on the data, for several M.
func TestCh4PrivacyAcrossMemorySizes(t *testing.T) {
	for _, mem := range []int{1, 3, 8} {
		digest := func(seed uint64) uint64 {
			relA, relB := relation.GenWithMatchBound(relation.NewRand(seed), 5, 12, 6)
			h := sim.NewHost(0)
			cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			tabA, _ := sim.LoadTable(h, cop.Sealer(), "A", relA)
			tabB, _ := sim.LoadTable(h, cop.Sealer(), "B", relB)
			if _, err := Join2(cop, tabA, tabB, keyEqui(t, relA, relB), 6, 0); err != nil {
				t.Fatal(err)
			}
			return h.Trace().Digest()
		}
		if digest(1) != digest(2) {
			t.Fatalf("M=%d: Algorithm 2 trace depends on data", mem)
		}
	}
}
