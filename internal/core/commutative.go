package core

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// This file implements the commutative-encryption false start of §4.5.1,
// inspired by [5, 10, 21]: T decrypts each tuple's join attribute and
// re-encrypts it with a Pohlig–Hellman/SRA-style deterministic cipher under
// one key shared across both relations, so the untrusted host can perform
// the sort-merge join on ciphertexts by itself. The adaptation is unsafe
// because determinism "leaks the distribution of the duplicates": equal join
// attributes produce equal tags, handing the host the full key histogram.

// rfc3526Prime1536 is the 1536-bit MODP group prime of RFC 3526, a safe
// prime (p = 2q+1), used as the fixed SRA group modulus.
const rfc3526Prime1536 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"

// SRAKey is a Pohlig–Hellman exponentiation key over the fixed safe-prime
// group: Enc(m) = m^e mod p. Encryption under two keys commutes.
type SRAKey struct {
	p *big.Int
	e *big.Int
}

// NewSRAKey draws a random exponent coprime to p−1.
func NewSRAKey() (*SRAKey, error) {
	p, ok := new(big.Int).SetString(rfc3526Prime1536, 16)
	if !ok {
		panic("core: bad embedded prime")
	}
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	for {
		e, err := rand.Int(rand.Reader, pm1)
		if err != nil {
			return nil, fmt.Errorf("core: SRA key: %w", err)
		}
		if e.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, e, pm1).Cmp(big.NewInt(1)) == 0 {
			return &SRAKey{p: p, e: e}, nil
		}
	}
}

// Encrypt maps a 64-bit value into the group and exponentiates. The offset
// keeps the element out of the degenerate fixed points {0, 1, p−1}.
func (k *SRAKey) Encrypt(v int64) *big.Int {
	m := new(big.Int).SetUint64(uint64(v) + 2)
	return new(big.Int).Exp(m, k.e, k.p)
}

// CommutesWith checks the defining property against another key on a probe
// value (used by tests): Enc_a(Enc_b(m)) == Enc_b(Enc_a(m)).
func (k *SRAKey) CommutesWith(o *SRAKey, v int64) bool {
	inner := k.Encrypt(v)
	ab := new(big.Int).Exp(inner, o.e, o.p)
	inner2 := o.Encrypt(v)
	ba := new(big.Int).Exp(inner2, k.e, k.p)
	return ab.Cmp(ba) == 0
}

// UnsafeCommutativeJoin runs the §4.5.1 commutative-encryption adaptation on
// an integer equijoin. T re-encrypts every join attribute under one
// deterministic SRA key and writes the tags to the host, which then performs
// the join itself by tag equality. The paper's version additionally shuffles
// the relations first; that hides which original row a tag belongs to, but
// not the demonstrated leak — the duplicate distribution — so this
// implementation keeps the original order, which also lets tests check the
// host-computed pairs against the reference join. The tag regions remain
// inspectable so the adversary tests can extract the histogram.
func UnsafeCommutativeJoin(t *sim.Coprocessor, a, b sim.Table, pred *relation.Equi) (pairs [][2]int64, tagsA, tagsB sim.RegionID, err error) {
	t.ResetStats()

	key, err := NewSRAKey()
	if err != nil {
		return nil, 0, 0, err
	}
	host := t.Host()
	tagsA = host.FreshRegion("unsafe.comm.tagsA", int(a.N))
	tagsB = host.FreshRegion("unsafe.comm.tagsB", int(b.N))

	emit := func(tab sim.Table, keyIdx int, dst sim.RegionID) error {
		for i := int64(0); i < tab.N; i++ {
			tup, err := t.GetTuple(tab, i)
			if err != nil {
				return err
			}
			tag := key.Encrypt(tup[keyIdx].I)
			// The tag is written in the clear for the host: determinism is
			// the mechanism (and the leak), not a bug in the simulator.
			host.Store(dst, i, tag.Bytes())
			t.ChargePredicate()
		}
		return nil
	}
	if err := emit(a, pred.KeyIndexA(), tagsA); err != nil {
		return nil, 0, 0, err
	}
	if err := emit(b, pred.KeyIndexB(), tagsB); err != nil {
		return nil, 0, 0, err
	}

	// Host-side join on ciphertext equality (no coprocessor involvement).
	index := make(map[string][]int64)
	for i := int64(0); i < a.N; i++ {
		index[string(host.Inspect(tagsA, i))] = append(index[string(host.Inspect(tagsA, i))], i)
	}
	for j := int64(0); j < b.N; j++ {
		for _, i := range index[string(host.Inspect(tagsB, j))] {
			pairs = append(pairs, [2]int64{i, j})
		}
	}
	return pairs, tagsA, tagsB, nil
}
