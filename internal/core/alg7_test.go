package core

import (
	"fmt"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// genSkewed builds a pair of keyed relations where one hot key covers 90%
// of the rows on both sides — the expansion step's worst case, since a
// single group owns almost the whole S·S output range.
func genSkewed(seed uint64, nA, nB int) (*relation.Relation, *relation.Relation) {
	rng := relation.NewRand(seed)
	const hot = int64(7)
	build := func(n int, coldBase int64) *relation.Relation {
		r := relation.NewRelation(relation.KeyedSchema())
		hotRows := n * 9 / 10
		for i := 0; i < n; i++ {
			key := hot
			if i >= hotRows {
				key = coldBase + int64(i)
			}
			r.MustAppend(relation.Tuple{relation.IntValue(key), relation.IntValue(rng.Int64N(1 << 30))})
		}
		return r
	}
	return build(nA, 1000), build(nB, 2000)
}

// TestJoin7MatchesReference checks Algorithm 7 against the reference join
// across the size edge cases around the transfer batch, mixed-multiplicity
// duplicate keys, and 90%-skewed keys — asserting the exact closed-form
// transfer count every time.
func TestJoin7MatchesReference(t *testing.T) {
	cases := []struct {
		name       string
		relA, relB *relation.Relation
	}{
		{"empty", relation.NewRelation(relation.KeyedSchema()), relation.NewRelation(relation.KeyedSchema())},
	}
	for _, n := range []int{1, 63, 64, 65} {
		s := n / 2
		if s == 0 {
			s = n
		}
		relA, relB := genJoinSized(uint64(100+n), n, n, s)
		cases = append(cases, struct {
			name       string
			relA, relB *relation.Relation
		}{fmt.Sprintf("n=%d", n), relA, relB})
	}
	for seed := uint64(0); seed < 3; seed++ {
		relA := relation.GenKeyed(relation.NewRand(40+seed), 30, 6)
		relB := relation.GenKeyed(relation.NewRand(80+seed), 40, 6)
		cases = append(cases, struct {
			name       string
			relA, relB *relation.Relation
		}{fmt.Sprintf("dups/seed=%d", seed), relA, relB})
	}
	skA, skB := genSkewed(5, 30, 30)
	cases = append(cases, struct {
		name       string
		relA, relB *relation.Relation
	}{"skew90", skA, skB})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := newEnv(t, 8, 17, tc.relA, tc.relB)
			pred := keyEqui(t, tc.relA, tc.relB)
			res, err := Join7(env.t, env.tabA, env.tabB, pred)
			if err != nil {
				t.Fatal(err)
			}
			want := relation.ReferenceJoin(tc.relA, tc.relB, pred)
			if res.OutputLen != int64(want.Len()) {
				t.Fatalf("OutputLen = %d, want exact join size %d", res.OutputLen, want.Len())
			}
			checkJoin(t, env, res, pred)
			wantTr := Join7Transfers(env.tabA.N, env.tabB.N, res.OutputLen)
			if got := int64(res.Stats.Transfers()); got != wantTr {
				t.Fatalf("transfers = %d, want closed form %d", got, wantTr)
			}
		})
	}
}

// TestJoin7Validation pins the admissibility errors.
func TestJoin7Validation(t *testing.T) {
	relA, relB := genJoinSized(1, 4, 4, 2)
	env := newEnv(t, 8, 3, relA, relB)
	if _, err := Join7(env.t, env.tabA, env.tabB, nil); err == nil {
		t.Fatal("Join7 accepted a nil predicate")
	}
	if _, err := ParallelJoin7(nil, env.tabA, env.tabB, keyEqui(t, relA, relB)); err == nil {
		t.Fatal("ParallelJoin7 accepted an empty fleet")
	}
}

// alg7InvarianceInputs builds two input pairs that agree on every public
// parameter — |A| = |B| = 12, S = 8 — but differ in contents, key values,
// and duplicate multiplicity structure (run 1: eight 1×1 groups; run 2: one
// 2×4 group). The duplicate handling is exactly where a naive sort-based
// join leaks, so the multiplicities are the interesting axis.
func alg7InvarianceInputs(variant int, seed uint64) (*relation.Relation, *relation.Relation) {
	if variant == 0 {
		return genJoinSized(seed, 12, 12, 8)
	}
	rng := relation.NewRand(seed)
	a := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < 2; i++ { // one key, multiplicity 2
		a.MustAppend(relation.Tuple{relation.IntValue(5), relation.IntValue(rng.Int64N(1 << 30))})
	}
	for i := 0; i < 10; i++ {
		a.MustAppend(relation.Tuple{relation.IntValue(100 + int64(i)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	b := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < 4; i++ { // matched by multiplicity 4: S = 2·4 = 8
		b.MustAppend(relation.Tuple{relation.IntValue(5), relation.IntValue(rng.Int64N(1 << 30))})
	}
	for i := 0; i < 8; i++ {
		b.MustAppend(relation.Tuple{relation.IntValue(900 + int64(i)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	return a, b
}

// TestAlg7AccessPatternInvariance pins Algorithm 7's obliviousness at the
// counter level, serially and per device: executions over inputs that agree
// only on (|A|, |B|, S) — differing in contents, keys, duplicate
// multiplicities, and coprocessor seeds — must charge identical sim.Stats,
// and at P > 1 identical stats on every device.
func TestAlg7AccessPatternInvariance(t *testing.T) {
	const nA, nB, s = 12, 12, 8

	t.Run("serial", func(t *testing.T) {
		run := func(variant int, dataSeed, copSeed uint64) sim.Stats {
			t.Helper()
			relA, relB := alg7InvarianceInputs(variant, dataSeed)
			h := sim.NewHost(0)
			cop := newCop(t, h, 8, copSeed)
			tabs := loadTables(t, h, cop.Sealer(), relA, relB)
			res, err := Join7(cop, tabs[0], tabs[1], keyEqui(t, relA, relB))
			if err != nil {
				t.Fatal(err)
			}
			if res.OutputLen != s {
				t.Fatalf("output length %d, want exact S=%d", res.OutputLen, s)
			}
			return res.Stats
		}
		s1, s2 := run(0, 1001, 7), run(1, 2002, 8)
		if s1.Transfers() == 0 || s1.Comparisons == 0 {
			t.Fatalf("degenerate run: %+v", s1)
		}
		if s1 != s2 {
			t.Fatalf("alg7 access pattern depends on tuple contents:\n run1 %+v\n run2 %+v", s1, s2)
		}
		if got, want := int64(s1.Transfers()), Join7Transfers(nA, nB, s); got != want {
			t.Fatalf("transfers = %d, want closed form %d", got, want)
		}
	})

	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			run := func(variant int, dataSeed uint64) []sim.Stats {
				t.Helper()
				relA, relB := alg7InvarianceInputs(variant, dataSeed)
				h := sim.NewHost(0)
				cops := newFleet(t, h, p, 8)
				tabs := loadTables(t, h, cops[0].Sealer(), relA, relB)
				res, err := ParallelJoin7(cops, tabs[0], tabs[1], keyEqui(t, relA, relB))
				if err != nil {
					t.Fatal(err)
				}
				if res.OutputLen != s {
					t.Fatalf("output length %d, want exact S=%d", res.OutputLen, s)
				}
				per := make([]sim.Stats, p)
				for i, c := range cops {
					per[i] = c.Stats()
				}
				return per
			}
			per1, per2 := run(0, 3003), run(1, 4004)
			for d := range per1 {
				if per1[d] != per2[d] {
					t.Fatalf("device %d schedule depends on tuple contents:\n run1 %+v\n run2 %+v", d, per1[d], per2[d])
				}
			}
		})
	}
}

// TestParallelJoin7Correctness runs the parallel variant over duplicate-
// heavy inputs for several fleet sizes and checks the reference join.
func TestParallelJoin7Correctness(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			relA := relation.GenKeyed(relation.NewRand(uint64(p)), 21, 5)
			relB := relation.GenKeyed(relation.NewRand(uint64(p)^0xBEEF), 27, 5)
			h := sim.NewHost(0)
			cops := newFleet(t, h, p, 8)
			tabs := loadTables(t, h, cops[0].Sealer(), relA, relB)
			pred := keyEqui(t, relA, relB)
			res, err := ParallelJoin7(cops, tabs[0], tabs[1], pred)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeOutput(cops[0], res)
			if err != nil {
				t.Fatal(err)
			}
			want := relation.ReferenceJoin(relA, relB, pred)
			if !relation.SameMultiset(got, want) {
				t.Fatalf("p=%d mismatch: got %d rows, want %d", p, got.Len(), want.Len())
			}
		})
	}
}
