package core

import (
	"errors"
	"fmt"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// runCh4 is the shape of the Chapter 4 algorithm entry points under test.
type runCh4 func(env *testEnv, pred *relation.Equi, n int64) (Result, error)

var ch4Algorithms = map[string]runCh4{
	"alg1": func(env *testEnv, pred *relation.Equi, n int64) (Result, error) {
		return Join1(env.t, env.tabA, env.tabB, pred, n)
	},
	"alg1variant": func(env *testEnv, pred *relation.Equi, n int64) (Result, error) {
		return Join1Variant(env.t, env.tabA, env.tabB, pred, n)
	},
	"alg2": func(env *testEnv, pred *relation.Equi, n int64) (Result, error) {
		return Join2(env.t, env.tabA, env.tabB, pred, n, 0)
	},
	"alg3": func(env *testEnv, pred *relation.Equi, n int64) (Result, error) {
		return Join3(env.t, env.tabA, env.tabB, pred, n, false)
	},
}

func TestCh4Correctness(t *testing.T) {
	shapes := []struct{ nA, nB, n int }{
		{4, 8, 2}, {7, 13, 5}, {10, 16, 1}, {3, 20, 20}, {8, 9, 3},
	}
	for name, run := range ch4Algorithms {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%s_%dx%d_N%d", name, sh.nA, sh.nB, sh.n), func(t *testing.T) {
				relA, relB := relation.GenWithMatchBound(relation.NewRand(uint64(sh.nA*sh.nB)), sh.nA, sh.nB, sh.n)
				env := newEnv(t, 64, 7, relA, relB)
				pred := keyEqui(t, relA, relB)
				res, err := run(env, pred, int64(sh.n))
				if err != nil {
					t.Fatal(err)
				}
				checkJoin(t, env, res, pred)
				if res.OutputLen != int64(sh.n*sh.nA) {
					t.Fatalf("output length %d, want N|A| = %d", res.OutputLen, sh.n*sh.nA)
				}
			})
		}
	}
}

func TestCh4CorrectnessArbitraryPredicate(t *testing.T) {
	// The general algorithms must handle non-equality predicates; use a band
	// join |a.key - b.key| <= 2.
	relA := relation.GenKeyed(relation.NewRand(3), 6, 12)
	relB := relation.GenKeyed(relation.NewRand(4), 10, 12)
	band, err := relation.NewBand(relA.Schema, "key", relB.Schema, "key", 2)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(relation.MaxMatches(relA, relB, band))
	if n == 0 {
		n = 1
	}
	for _, name := range []string{"alg1", "alg2"} {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 64, 9, relA, relB)
			var res Result
			if name == "alg1" {
				res, err = Join1(env.t, env.tabA, env.tabB, band, n)
			} else {
				res, err = Join2(env.t, env.tabA, env.tabB, band, n, 0)
			}
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeOutput(env.t, res)
			if err != nil {
				t.Fatal(err)
			}
			want := relation.ReferenceJoin(relA, relB, band)
			if !relation.SameMultiset(got, want) {
				t.Fatalf("band join mismatch: got %d want %d rows", got.Len(), want.Len())
			}
		})
	}
}

func TestCh4CorrectnessWithOCB(t *testing.T) {
	// One full run per algorithm through the real authenticated encryption.
	relA, relB := relation.GenWithMatchBound(relation.NewRand(5), 5, 10, 3)
	for name, run := range ch4Algorithms {
		t.Run(name, func(t *testing.T) {
			h := sim.NewHost(0)
			sealer, err := sim.NewRandomOCBSealer()
			if err != nil {
				t.Fatal(err)
			}
			cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 64, Sealer: sealer, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			tabA, err := sim.LoadTable(h, sealer, "A", relA)
			if err != nil {
				t.Fatal(err)
			}
			tabB, err := sim.LoadTable(h, sealer, "B", relB)
			if err != nil {
				t.Fatal(err)
			}
			env := &testEnv{h: h, t: cop, relA: relA, relB: relB, tabA: tabA, tabB: tabB}
			pred := keyEqui(t, relA, relB)
			res, err := run(env, pred, 3)
			if err != nil {
				t.Fatal(err)
			}
			checkJoin(t, env, res, pred)
		})
	}
}

func TestCh4PrivacyTraceIdentical(t *testing.T) {
	// Definition 1: for relations agreeing on (|A|, |B|, N), the access
	// sequences must be identically distributed. The algorithms are
	// deterministic given the device seed, so the traces must be equal.
	const nA, nB, n = 6, 12, 3
	for name, run := range ch4Algorithms {
		t.Run(name, func(t *testing.T) {
			digest := func(seed uint64) (uint64, uint64) {
				relA, relB := relation.GenWithMatchBound(relation.NewRand(seed), nA, nB, n)
				env := newEnv(t, 64, 42, relA, relB)
				if _, err := run(env, keyEqui(t, relA, relB), n); err != nil {
					t.Fatal(err)
				}
				return env.h.Trace().Digest(), env.h.Trace().Count()
			}
			d1, c1 := digest(100)
			d2, c2 := digest(200)
			if d1 != d2 || c1 != c2 {
				t.Fatalf("%s: access pattern depends on relation contents", name)
			}
		})
	}
}

func TestCh4PrivacyExtremeContents(t *testing.T) {
	// All-match vs no-match inputs of the same shape must be
	// indistinguishable (given the same declared N).
	const nA, nB, n = 4, 8, 8
	mk := func(match bool) (*relation.Relation, *relation.Relation) {
		a := relation.NewRelation(relation.KeyedSchema())
		b := relation.NewRelation(relation.KeyedSchema())
		for i := 0; i < nA; i++ {
			a.MustAppend(relation.Tuple{relation.IntValue(0), relation.IntValue(int64(i))})
		}
		for j := 0; j < nB; j++ {
			key := int64(0)
			if !match {
				key = 999
			}
			b.MustAppend(relation.Tuple{relation.IntValue(key), relation.IntValue(int64(j))})
		}
		return a, b
	}
	for name, run := range ch4Algorithms {
		t.Run(name, func(t *testing.T) {
			digest := func(match bool) uint64 {
				relA, relB := mk(match)
				env := newEnv(t, 64, 17, relA, relB)
				if _, err := run(env, keyEqui(t, relA, relB), n); err != nil {
					t.Fatal(err)
				}
				return env.h.Trace().Digest()
			}
			if digest(true) != digest(false) {
				t.Fatalf("%s: all-match and no-match traces differ", name)
			}
		})
	}
}

func TestJoin1TransfersExact(t *testing.T) {
	for _, sh := range []struct{ nA, nB, n int64 }{{4, 8, 2}, {5, 13, 3}, {2, 10, 10}} {
		relA, relB := relation.GenWithMatchBound(relation.NewRand(1), int(sh.nA), int(sh.nB), int(sh.n))
		env := newEnv(t, 64, 5, relA, relB)
		res, err := Join1(env.t, env.tabA, env.tabB, keyEqui(t, relA, relB), sh.n)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := int64(res.Stats.Transfers()), Join1Transfers(sh.nA, sh.nB, sh.n); got != want {
			t.Errorf("%+v: transfers %d, want %d", sh, got, want)
		}
	}
}

func TestJoin2TransfersExact(t *testing.T) {
	for _, sh := range []struct{ nA, nB, n, m int64 }{
		{4, 8, 2, 2}, {5, 13, 6, 2}, {3, 10, 10, 4}, {6, 6, 1, 8},
	} {
		relA, relB := relation.GenWithMatchBound(relation.NewRand(2), int(sh.nA), int(sh.nB), int(sh.n))
		env := newEnv(t, int(sh.m), 5, relA, relB)
		res, err := Join2(env.t, env.tabA, env.tabB, keyEqui(t, relA, relB), sh.n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := int64(res.Stats.Transfers()), Join2Transfers(sh.nA, sh.nB, sh.n, sh.m, 0); got != want {
			t.Errorf("%+v: transfers %d, want %d", sh, got, want)
		}
		// The γ exposed must match the cost model's.
		if Gamma2(sh.n, sh.m, 0) != (sh.n+sh.m-1)/sh.m {
			t.Errorf("Gamma2 mismatch for %+v", sh)
		}
	}
}

func TestJoin3TransfersExact(t *testing.T) {
	for _, preSorted := range []bool{false, true} {
		relA, relB := relation.GenWithMatchBound(relation.NewRand(3), 5, 12, 4)
		if preSorted {
			// Provider-sorted B.
			eq := keyEqui(t, relA, relB)
			rows := relB.Rows
			for i := 1; i < len(rows); i++ {
				for j := i; j > 0 && eq.Less(rows[j], rows[j-1]); j-- {
					rows[j], rows[j-1] = rows[j-1], rows[j]
				}
			}
		}
		env := newEnv(t, 64, 5, relA, relB)
		pred := keyEqui(t, relA, relB)
		res, err := Join3(env.t, env.tabA, env.tabB, pred, 4, preSorted)
		if err != nil {
			t.Fatal(err)
		}
		checkJoin(t, env, res, pred)
		if got, want := int64(res.Stats.Transfers()), Join3Transfers(5, 12, 4, preSorted); got != want {
			t.Errorf("preSorted=%v: transfers %d, want %d", preSorted, got, want)
		}
	}
}

func TestJoin2MemoryEnforced(t *testing.T) {
	// With M=4 and N=16, Algorithm 2 runs γ=4 passes holding blk=4 results;
	// it must succeed within the granted memory, and the device must reject
	// an attempt to grab more during the run (indirectly verified by the
	// grant in Join2 itself succeeding exactly).
	relA, relB := relation.GenWithMatchBound(relation.NewRand(4), 3, 16, 16)
	env := newEnv(t, 4, 5, relA, relB)
	pred := keyEqui(t, relA, relB)
	res, err := Join2(env.t, env.tabA, env.tabB, pred, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkJoin(t, env, res, pred)
	if env.t.MemoryFree() != 4 {
		t.Fatal("memory not released after run")
	}
}

func TestCh4Validation(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(6), 3, 6, 2)
	env := newEnv(t, 16, 5, relA, relB)
	pred := keyEqui(t, relA, relB)
	if _, err := Join1(env.t, env.tabA, env.tabB, pred, 0); !errors.Is(err, errInvalid) {
		t.Error("N=0 accepted")
	}
	if _, err := Join1(env.t, env.tabA, env.tabB, pred, 7); !errors.Is(err, errInvalid) {
		t.Error("N>|B| accepted")
	}
	if _, err := Join2(env.t, env.tabA, env.tabB, pred, 2, 16); !errors.Is(err, errInvalid) {
		t.Error("delta consuming all memory accepted")
	}
	empty := sim.Table{Region: env.tabA.Region, N: 0, Schema: relA.Schema}
	if _, err := Join1(env.t, empty, env.tabB, pred, 1); !errors.Is(err, errInvalid) {
		t.Error("empty relation accepted")
	}
}

func TestCh4TamperAborts(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(7), 4, 8, 2)
	h := sim.NewHost(0)
	sealer, err := sim.NewRandomOCBSealer()
	if err != nil {
		t.Fatal(err)
	}
	cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 16, Sealer: sealer, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tabA, _ := sim.LoadTable(h, sealer, "A", relA)
	tabB, _ := sim.LoadTable(h, sealer, "B", relB)
	// Malicious host flips a bit in an input cell.
	ct := append([]byte(nil), h.Inspect(tabB.Region, 3)...)
	ct[len(ct)/2] ^= 0x80
	h.Tamper(tabB.Region, 3, ct)
	_, err = Join1(cop, tabA, tabB, keyEqui(t, relA, relB), 2)
	if !errors.Is(err, sim.ErrTamper) {
		t.Fatalf("tampered run error = %v, want ErrTamper", err)
	}
}

func TestUnderestimatedNLosesResults(t *testing.T) {
	// N is a correctness precondition, not just a privacy parameter:
	// declaring it too small silently truncates per-tuple matches ("Guessing
	// N too small and rerunning the algorithm if the actual value happens to
	// be larger leaks information", §4.3 — so the algorithms never rerun).
	relA, relB := relation.GenWithMatchBound(relation.NewRand(81), 4, 16, 6)
	pred := keyEqui(t, relA, relB)
	want := relation.ReferenceJoin(relA, relB, pred).Len()
	for name, run := range ch4Algorithms {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 64, 9, relA, relB)
			res, err := run(env, pred, 3) // true N is 6
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeOutput(env.t, res)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() >= want {
				t.Fatalf("%s with understated N returned %d rows, reference %d — expected truncation",
					name, got.Len(), want)
			}
		})
	}
}

func TestSortedMatchesConsecutiveInvariant(t *testing.T) {
	// Algorithm 3's key insight (§4.5.2): after sorting B on the join
	// attribute, "the B tuples that will join with an A tuple will come
	// from at most N consecutive positions in B" — which is what makes the
	// circular scratch[N] overwrite-free. Check the invariant on random
	// inputs.
	for seed := uint64(0); seed < 10; seed++ {
		relA := relation.GenKeyed(relation.NewRand(seed), 8, 6)
		relB := relation.GenKeyed(relation.NewRand(seed+500), 20, 6)
		eq := keyEqui(t, relA, relB)
		n := relation.MaxMatches(relA, relB, eq)
		if n == 0 {
			continue
		}
		sorted := append([]relation.Tuple(nil), relB.Rows...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && eq.Less(sorted[j], sorted[j-1]); j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		for _, a := range relA.Rows {
			first, last := -1, -1
			for i, b := range sorted {
				if eq.Match(a, b) {
					if first < 0 {
						first = i
					}
					last = i
				}
			}
			if first < 0 {
				continue
			}
			span := last - first + 1
			if span > n {
				t.Fatalf("seed %d: matches span %d positions > N=%d", seed, span, n)
			}
			// And they are contiguous: every position in [first, last] matches.
			for i := first; i <= last; i++ {
				if !eq.Match(a, sorted[i]) {
					t.Fatalf("seed %d: non-contiguous match block", seed)
				}
			}
		}
	}
}
