package core

import (
	"fmt"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// This file implements the join designs the paper shows to be UNSAFE. They
// compute correct results — and their tests prove the adversary extracts
// forbidden information from their access patterns, which is exactly the
// negative result of §3.4 and §4.5.1. They must never be used for real
// joins; they exist so the leak is demonstrable rather than asserted.

// UnsafeNestedLoop is the straightforward adaptation of §3.4.1: T outputs a
// result tuple immediately upon a match. An adversary observing whether an
// output follows each B read learns exactly which pairs joined.
func UnsafeNestedLoop(t *sim.Coprocessor, a, b sim.Table, pred relation.Predicate) (Result, error) {
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	t.ResetStats()

	out := t.Host().FreshRegion("unsafe.nl.out", 0)
	outPos := int64(0)
	for ai := int64(0); ai < a.N; ai++ {
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return Result{}, err
		}
		for bi := int64(0); bi < b.N; bi++ {
			bT, err := t.GetTuple(b, bi)
			if err != nil {
				return Result{}, err
			}
			t.ChargePredicate()
			if pred.Match(aT, bT) {
				payload, err := joinPayload(outSchema, aT, bT)
				if err != nil {
					return Result{}, err
				}
				// The leak: an output put appears right here, between two B
				// gets, iff the pair matched.
				if err := t.Put(out, outPos, wrapReal(payload)); err != nil {
					return Result{}, err
				}
				outPos++
			}
		}
	}
	return Result{
		Output:    sim.Table{Region: out, N: outPos, Schema: outSchema},
		OutputLen: outPos,
		Stats:     t.Stats(),
	}, nil
}

// UnsafeBlockedNestedLoop is the "incorrect fix" of §3.4.2: T buffers up to
// blockSize results and flushes the block when full. The adversary can still
// estimate the distribution of matches from the flush positions.
func UnsafeBlockedNestedLoop(t *sim.Coprocessor, a, b sim.Table, pred relation.Predicate, blockSize int) (Result, error) {
	if blockSize <= 0 {
		return Result{}, fmt.Errorf("%w: block size must be positive", errInvalid)
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	release, err := t.Grant(blockSize)
	if err != nil {
		return Result{}, err
	}
	defer release()
	t.ResetStats()

	out := t.Host().FreshRegion("unsafe.blk.out", 0)
	outPos := int64(0)
	var block [][]byte
	flush := func() error {
		for _, cell := range block {
			if err := t.Put(out, outPos, cell); err != nil {
				return err
			}
			outPos++
		}
		block = block[:0]
		return nil
	}
	for ai := int64(0); ai < a.N; ai++ {
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return Result{}, err
		}
		for bi := int64(0); bi < b.N; bi++ {
			bT, err := t.GetTuple(b, bi)
			if err != nil {
				return Result{}, err
			}
			t.ChargePredicate()
			if pred.Match(aT, bT) {
				payload, err := joinPayload(outSchema, aT, bT)
				if err != nil {
					return Result{}, err
				}
				block = append(block, wrapReal(payload))
				if len(block) == blockSize {
					if err := flush(); err != nil {
						return Result{}, err
					}
				}
			}
		}
	}
	if err := flush(); err != nil {
		return Result{}, err
	}
	return Result{
		Output:    sim.Table{Region: out, N: outPos, Schema: outSchema},
		OutputLen: outPos,
		Stats:     t.Stats(),
	}, nil
}

// UnsafeSortMergeJoin is the classical sort-merge equijoin adaptation of
// §4.5.1. Both inputs are obliviously sorted (that part is safe); the merge
// phase's pointer movements then reveal the number of matches per tuple:
// "after the third match, when T reads the next tuple from B, it realizes
// that there are no more matches in B for a. Therefore, T will read the
// next tuple from A."
func UnsafeSortMergeJoin(t *sim.Coprocessor, a, b sim.Table, pred *relation.Equi) (Result, error) {
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	t.ResetStats()

	// Oblivious sorts of both inputs (data-independent prelude).
	lessA := func(x, y []byte) bool {
		tx, _ := a.Schema.Decode(x)
		ty, _ := a.Schema.Decode(y)
		return keyLess(tx[pred.KeyIndexA()], ty[pred.KeyIndexA()])
	}
	lessB := func(x, y []byte) bool {
		tx, _ := b.Schema.Decode(x)
		ty, _ := b.Schema.Decode(y)
		return keyLess(tx[pred.KeyIndexB()], ty[pred.KeyIndexB()])
	}
	if err := oblivious.Sort(t, a.Region, a.N, lessA); err != nil {
		return Result{}, err
	}
	if err := oblivious.Sort(t, b.Region, b.N, lessB); err != nil {
		return Result{}, err
	}

	out := t.Host().FreshRegion("unsafe.smj.out", 0)
	outPos := int64(0)
	bi := int64(0)
	for ai := int64(0); ai < a.N; ai++ {
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return Result{}, err
		}
		// Advance past smaller B tuples; the number of B gets per A tuple is
		// data-dependent — the leak.
		for bi < b.N {
			bT, err := t.GetTuple(b, bi)
			if err != nil {
				return Result{}, err
			}
			t.ChargePredicate()
			if !keyLess(bT[pred.KeyIndexB()], aT[pred.KeyIndexA()]) {
				break
			}
			bi++
		}
		for bj := bi; bj < b.N; bj++ {
			bT, err := t.GetTuple(b, bj)
			if err != nil {
				return Result{}, err
			}
			t.ChargePredicate()
			if !pred.Match(aT, bT) {
				break
			}
			payload, err := joinPayload(outSchema, aT, bT)
			if err != nil {
				return Result{}, err
			}
			if err := t.Put(out, outPos, wrapReal(payload)); err != nil {
				return Result{}, err
			}
			outPos++
		}
	}
	return Result{
		Output:    sim.Table{Region: out, N: outPos, Schema: outSchema},
		OutputLen: outPos,
		Stats:     t.Stats(),
	}, nil
}

// keyLess orders two join-attribute values of equal type.
func keyLess(a, b relation.Value) bool {
	switch {
	case a.I != b.I:
		return a.I < b.I
	case a.F != b.F:
		return a.F < b.F
	default:
		return a.S < b.S
	}
}

// UnsafeGraceHashPartition performs the grace-hash partitioning attempt of
// §4.5.1: A is obliviously shuffled, then hashed into buckets of bucketSize;
// when any bucket fills, all buckets are padded with decoys and flushed.
// The number of tuples read between flushes reveals the skew of the join
// attribute ("one of the buckets will fill up much faster than the rest").
// It returns the bucket region (partitioning only — the paper abandons the
// approach before the join phase).
func UnsafeGraceHashPartition(t *sim.Coprocessor, a sim.Table, keyIdx int, numBuckets, bucketSize int) (sim.Table, error) {
	if numBuckets <= 0 || bucketSize <= 0 {
		return sim.Table{}, fmt.Errorf("%w: bucket shape", errInvalid)
	}
	release, err := t.Grant(numBuckets * bucketSize)
	if err != nil {
		return sim.Table{}, err
	}
	defer release()
	t.ResetStats()

	if err := oblivious.Shuffle(t, a.Region, a.N); err != nil {
		return sim.Table{}, err
	}

	out := t.Host().FreshRegion("unsafe.ghj.buckets", 0)
	outPos := int64(0)
	buckets := make([][][]byte, numBuckets)
	payloadSize := a.Schema.TupleSize()
	flushAll := func() error {
		for bi := range buckets {
			for len(buckets[bi]) < bucketSize {
				buckets[bi] = append(buckets[bi], wrapDecoy(payloadSize))
			}
			for _, cell := range buckets[bi] {
				if err := t.Put(out, outPos, cell); err != nil {
					return err
				}
				outPos++
			}
			buckets[bi] = buckets[bi][:0]
		}
		return nil
	}
	for ai := int64(0); ai < a.N; ai++ {
		enc, err := t.Get(a.Region, ai)
		if err != nil {
			return sim.Table{}, err
		}
		aT, err := a.Schema.Decode(enc)
		if err != nil {
			return sim.Table{}, err
		}
		h := int(uint64(aT[keyIdx].I) % uint64(numBuckets))
		buckets[h] = append(buckets[h], wrapReal(enc))
		if len(buckets[h]) == bucketSize {
			// The leak: this flush position depends on the key distribution.
			if err := flushAll(); err != nil {
				return sim.Table{}, err
			}
		}
	}
	if err := flushAll(); err != nil {
		return sim.Table{}, err
	}
	return sim.Table{Region: out, N: outPos, Schema: a.Schema}, nil
}
