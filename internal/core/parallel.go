package core

import (
	"fmt"
	"sync"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// This file implements the parallel variants of §4.4.4 ("both the above
// algorithms are easy to parallelize with a linear speed-up in the number
// of processors") and §5.3.5. All coprocessors must share one sealer and be
// attached to the same host.

// ParallelJoin2 runs Algorithm 2 with P coprocessors, partitioning the
// outer relation A: device p handles A rows [p·|A|/P, (p+1)·|A|/P) and
// writes its fixed-size flushes into a disjoint range of the shared output.
// Every device's access pattern depends only on its partition bounds and
// (|B|, N, M), so the per-device privacy guarantee is unchanged.
func ParallelJoin2(cops []*sim.Coprocessor, a, b sim.Table, pred relation.Predicate, n int64, delta int64) (Result, error) {
	if len(cops) == 0 {
		return Result{}, fmt.Errorf("%w: no coprocessors", errInvalid)
	}
	if err := validateCh4(a, b, n); err != nil {
		return Result{}, err
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	// All devices must agree on γ and blk, so they are derived from the
	// minimum memory across the fleet.
	minMem := cops[0].Memory()
	for _, c := range cops {
		if c.Memory() < minMem {
			minMem = c.Memory()
		}
	}
	usable := int64(minMem) - delta
	if usable < 1 {
		return Result{}, fmt.Errorf("%w: no memory left after δ=%d", errInvalid, delta)
	}
	gamma := (n + usable - 1) / usable
	if gamma < 1 {
		gamma = 1
	}
	blk := (n + gamma - 1) / gamma

	host := cops[0].Host()
	out := host.FreshRegion("palg2.out", int(gamma*blk*a.N))
	payloadSize := outSchema.TupleSize()

	p := int64(len(cops))
	var wg sync.WaitGroup
	errs := make([]error, p)
	for w := int64(0); w < p; w++ {
		lo := w * a.N / p
		hi := (w + 1) * a.N / p
		wg.Add(1)
		go func(w, lo, hi int64) {
			defer wg.Done()
			errs[w] = join2Range(cops[w], a, b, pred, outSchema, out, int64(payloadSize), lo, hi, gamma, blk)
		}(w, lo, hi)
	}
	wg.Wait()
	var stats sim.Stats
	for w := range errs {
		if errs[w] != nil {
			return Result{}, errs[w]
		}
		stats.Add(cops[w].Stats())
	}
	return Result{
		Output:    sim.Table{Region: out, N: gamma * blk * a.N, Schema: outSchema},
		OutputLen: gamma * blk * a.N,
		Stats:     stats,
	}, nil
}

// join2Range is Algorithm 2's inner discipline over A rows [lo, hi),
// writing flushes at the global offsets those rows own.
func join2Range(t *sim.Coprocessor, a, b sim.Table, pred relation.Predicate,
	outSchema *relation.Schema, out sim.RegionID, payloadSize int64, lo, hi, gamma, blk int64) error {
	release, err := t.Grant(int(blk))
	if err != nil {
		return err
	}
	defer release()
	t.ResetStats()
	for ai := lo; ai < hi; ai++ {
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return err
		}
		last := int64(-1)
		for pass := int64(0); pass < gamma; pass++ {
			joined := make([][]byte, 0, blk)
			scanErr := t.ScanRange(b.Region, 0, b.N, func(bi int64, pt []byte) error {
				bT, err := b.Schema.Decode(pt)
				if err != nil {
					return fmt.Errorf("core: decoding B[%d]: %w", bi, err)
				}
				t.ChargePredicate()
				matched := pred.Match(aT, bT)
				if bi > last && int64(len(joined)) < blk && matched {
					payload, err := outSchema.Encode(relation.JoinTuples(aT, bT))
					if err != nil {
						return err
					}
					joined = append(joined, wrapReal(payload))
					last = bi
				}
				return nil
			})
			if scanErr != nil {
				return scanErr
			}
			for int64(len(joined)) < blk {
				joined = append(joined, wrapDecoy(int(payloadSize)))
			}
			base := ai*gamma*blk + pass*blk
			if err := t.PutRange(out, base, joined); err != nil {
				return err
			}
			if err := t.RequestDisk(out, base, blk); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParallelJoin5 runs Algorithm 5 with P coprocessors (§5.3.5): a
// coordinator screens the iTuples to learn S, then device i re-scans D and
// outputs the results ranked [i·blk, (i+1)·blk) in the fixed order, blk =
// ⌈S/P⌉. All devices read the iTuples in the same order; the per-device
// flush schedule depends only on (L, S, M, P).
func ParallelJoin5(cops []*sim.Coprocessor, tables []sim.Table, pred relation.MultiPredicate) (Result, error) {
	if len(cops) == 0 {
		return Result{}, fmt.Errorf("%w: no coprocessors", errInvalid)
	}
	outSchema, err := outputSchemaN(tables)
	if err != nil {
		return Result{}, err
	}
	// Coordinator screening pass (device 0).
	coord, err := sim.NewCartesian(cops[0], tables)
	if err != nil {
		return Result{}, err
	}
	l := coord.Size()
	var s int64
	for i := int64(0); i < l; i++ {
		row, err := coord.Read(i)
		if err != nil {
			return Result{}, err
		}
		cops[0].ChargePredicate()
		if pred.Satisfy(row) {
			s++
		}
	}
	host := cops[0].Host()
	out := host.FreshRegion("palg5.out", int(s))
	if s == 0 {
		return Result{
			Output:    sim.Table{Region: out, N: 0, Schema: outSchema},
			OutputLen: 0,
			Stats:     cops[0].Stats(),
		}, nil
	}

	p := int64(len(cops))
	blk := (s + p - 1) / p
	var wg sync.WaitGroup
	errs := make([]error, p)
	for w := int64(0); w < p; w++ {
		loRank := w * blk
		hiRank := min64(loRank+blk, s)
		wg.Add(1)
		go func(w, loRank, hiRank int64) {
			defer wg.Done()
			if loRank >= hiRank {
				return
			}
			errs[w] = join5RankWindow(cops[w], tables, pred, outSchema, out, loRank, hiRank)
		}(w, loRank, hiRank)
	}
	wg.Wait()
	var stats sim.Stats
	for w := range errs {
		if errs[w] != nil {
			return Result{}, errs[w]
		}
		if w > 0 { // device 0's stats include the screening pass
			stats.Add(cops[w].Stats())
		}
	}
	stats.Add(cops[0].Stats())
	return Result{
		Output:    sim.Table{Region: out, N: s, Schema: outSchema},
		OutputLen: s,
		Stats:     stats,
	}, nil
}

// join5RankWindow scans D repeatedly, storing results whose global rank
// falls in [loRank, hiRank), up to M per scan, flushing at scan boundaries.
func join5RankWindow(t *sim.Coprocessor, tables []sim.Table, pred relation.MultiPredicate,
	outSchema *relation.Schema, out sim.RegionID, loRank, hiRank int64) error {
	cart, err := sim.NewCartesian(t, tables)
	if err != nil {
		return err
	}
	m := int64(t.Memory())
	release, err := t.Grant(t.Memory())
	if err != nil {
		return err
	}
	defer release()
	l := cart.Size()
	next := loRank // next global rank this device still needs
	for next < hiRank {
		stored := make([][]byte, 0, m)
		rank := int64(0)
		flushBase := next
		for i := int64(0); i < l; i++ {
			row, err := cart.Read(i)
			if err != nil {
				return err
			}
			t.ChargePredicate()
			if !pred.Satisfy(row) {
				continue
			}
			if rank >= next && rank < hiRank && int64(len(stored)) < m {
				payload, err := outSchema.Encode(relation.JoinTuples(row...))
				if err != nil {
					return err
				}
				stored = append(stored, wrapReal(payload))
			}
			rank++
		}
		if err := t.PutRange(out, flushBase, stored); err != nil {
			return err
		}
		if len(stored) > 0 {
			if err := t.RequestDisk(out, flushBase, int64(len(stored))); err != nil {
				return err
			}
		}
		next += int64(len(stored))
		if len(stored) == 0 {
			break // window exhausted (fewer results than hiRank)
		}
	}
	return nil
}

// ParallelJoin3 runs Algorithm 3 with P coprocessors: the oblivious sort of
// B uses the parallel bitonic network over the largest power-of-two prefix
// of the fleet, then the outer relation A is partitioned — device p handles
// A rows [p·|A|/P, (p+1)·|A|/P) against its own private scratch ring,
// writing output rows at the global offsets its partition owns. Every
// device's access pattern depends only on its partition bounds and
// (|B|, N), so the per-device privacy guarantee is unchanged.
func ParallelJoin3(cops []*sim.Coprocessor, a, b sim.Table, pred *relation.Equi, n int64, preSorted bool) (Result, error) {
	if len(cops) == 0 {
		return Result{}, fmt.Errorf("%w: no coprocessors", errInvalid)
	}
	if err := validateCh4(a, b, n); err != nil {
		return Result{}, err
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	for _, c := range cops {
		c.ResetStats()
	}

	if !preSorted {
		less := func(x, y []byte) bool {
			tx, err := b.Schema.Decode(x)
			if err != nil {
				return false
			}
			ty, err := b.Schema.Decode(y)
			if err != nil {
				return false
			}
			return pred.Less(tx, ty)
		}
		// ParallelSort needs a power-of-two device count; use the largest
		// power-of-two prefix of the fleet.
		ps := 1
		for ps*2 <= len(cops) {
			ps *= 2
		}
		if err := oblivious.ParallelSort(cops[:ps], b.Region, b.N, less); err != nil {
			return Result{}, err
		}
	}

	host := cops[0].Host()
	out := host.FreshRegion("palg3.out", int(n*a.N))
	payloadSize := outSchema.TupleSize()

	p := int64(len(cops))
	var wg sync.WaitGroup
	errs := make([]error, p)
	for w := int64(0); w < p; w++ {
		lo := w * a.N / p
		hi := (w + 1) * a.N / p
		wg.Add(1)
		go func(w, lo, hi int64) {
			defer wg.Done()
			errs[w] = join3Range(cops[w], a, b, pred, outSchema, out, int64(payloadSize), n, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var stats sim.Stats
	for w := range errs {
		if errs[w] != nil {
			return Result{}, errs[w]
		}
		stats.Add(cops[w].Stats())
	}
	return Result{
		Output:    sim.Table{Region: out, N: n * a.N, Schema: outSchema},
		OutputLen: n * a.N,
		Stats:     stats,
	}, nil
}

// join3Range is Algorithm 3's inner discipline over A rows [lo, hi) with a
// device-private scratch ring of N cells.
func join3Range(t *sim.Coprocessor, a, b sim.Table, pred *relation.Equi,
	outSchema *relation.Schema, out sim.RegionID, payloadSize, n, lo, hi int64) error {
	if lo >= hi {
		return nil
	}
	scratch := t.Host().FreshRegion("palg3.scratch", int(n))
	decoy := wrapDecoy(int(payloadSize))
	decoyFill := make([][]byte, n)
	for j := range decoyFill {
		decoyFill[j] = decoy
	}
	for ai := lo; ai < hi; ai++ {
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return err
		}
		if err := t.PutRange(scratch, 0, decoyFill); err != nil {
			return err
		}
		i := int64(0)
		for bi := int64(0); bi < b.N; bi++ {
			bT, err := t.GetTuple(b, bi)
			if err != nil {
				return err
			}
			prev, err := t.Get(scratch, i%n)
			if err != nil {
				return err
			}
			t.ChargePredicate()
			if pred.Match(aT, bT) {
				payload, err := joinPayload(outSchema, aT, bT)
				if err != nil {
					return err
				}
				if err := t.Put(scratch, i%n, wrapReal(payload)); err != nil {
					return err
				}
			} else {
				if err := t.Put(scratch, i%n, prev); err != nil {
					return err
				}
			}
			i++
		}
		if err := t.RequestCopyOut(out, ai*n, scratch, 0, n); err != nil {
			return err
		}
	}
	return nil
}

// ParallelJoin4 runs Algorithm 4 with P coprocessors (§5.3.5): the iTuple
// range is partitioned across devices, each emitting one oTuple per iTuple
// into its own slice of the raw output; the decoy filter then uses the
// parallel bitonic sort over all P devices ("oblivious filtering out decoys
// in parallel requires a parallel bitonic sort"). P must be a power of two.
func ParallelJoin4(cops []*sim.Coprocessor, tables []sim.Table, pred relation.MultiPredicate) (Result, error) {
	if len(cops) == 0 {
		return Result{}, fmt.Errorf("%w: no coprocessors", errInvalid)
	}
	outSchema, err := outputSchemaN(tables)
	if err != nil {
		return Result{}, err
	}
	probe, err := sim.NewCartesian(cops[0], tables)
	if err != nil {
		return Result{}, err
	}
	l := probe.Size()
	host := cops[0].Host()
	raw := host.FreshRegion("palg4.raw", int(l))
	payloadSize := outSchema.TupleSize()

	p := int64(len(cops))
	counts := make([]int64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for w := int64(0); w < p; w++ {
		lo := w * l / p
		hi := (w + 1) * l / p
		wg.Add(1)
		go func(w, lo, hi int64) {
			defer wg.Done()
			cart, err := sim.NewCartesian(cops[w], tables)
			if err != nil {
				errs[w] = err
				return
			}
			for i := lo; i < hi; i++ {
				row, err := cart.Read(i)
				if err != nil {
					errs[w] = err
					return
				}
				cops[w].ChargePredicate()
				var cell []byte
				if pred.Satisfy(row) {
					payload, err := outSchema.Encode(relation.JoinTuples(row...))
					if err != nil {
						errs[w] = err
						return
					}
					cell = wrapReal(payload)
					counts[w]++
				} else {
					cell = wrapDecoy(payloadSize)
				}
				if err := cops[w].Put(raw, i, cell); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	var s int64
	for _, c := range counts {
		s += c
	}

	// Parallel oblivious sort, real results first; then the first S cells
	// are the exact output.
	if err := oblivious.ParallelSort(cops, raw, l, oTupleFirst); err != nil {
		return Result{}, err
	}
	out := host.FreshRegion("palg4.out", int(s))
	if s > 0 {
		if err := cops[0].RequestCopyOut(out, 0, raw, 0, s); err != nil {
			return Result{}, err
		}
	}
	var stats sim.Stats
	for _, c := range cops {
		stats.Add(c.Stats())
	}
	return Result{
		Output:    sim.Table{Region: out, N: s, Schema: outSchema},
		OutputLen: s,
		Stats:     stats,
	}, nil
}

// ParallelJoin7 runs Algorithm 7 with P coprocessors. The pipeline's cost
// is dominated by its oblivious sorts, so those are what parallelize: the
// union key sort and the final B alignment sort run on the parallel bitonic
// network over the largest power-of-two device prefix, and the two sides'
// expansions (compaction sort, distribution, fill) run concurrently on the
// two halves of that prefix. The linear scans and the stitch stay on device
// 0 — they are O(n + S) against the sorts' log² factors. Every device's
// schedule is a pure function of (|A|, |B|, S, P): the side split, the sort
// partitions, and the scan bounds derive only from public sizes, so the
// per-device invariance guarantee matches the serial algorithm's.
func ParallelJoin7(cops []*sim.Coprocessor, a, b sim.Table, pred *relation.Equi) (Result, error) {
	if len(cops) == 0 {
		return Result{}, fmt.Errorf("%w: no coprocessors", errInvalid)
	}
	if len(cops) == 1 {
		return Join7(cops[0], a, b, pred)
	}
	if a.N < 0 || b.N < 0 {
		return Result{}, fmt.Errorf("%w: negative relation size", errInvalid)
	}
	if pred == nil {
		return Result{}, fmt.Errorf("%w: alg7 needs an equality predicate", errInvalid)
	}
	if !pred.Orderable() {
		return Result{}, fmt.Errorf("%w: alg7 needs an orderable join attribute", errInvalid)
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	for _, c := range cops {
		c.ResetStats()
	}
	releases := make([]func(), 0, len(cops))
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, c := range cops {
		release, err := c.Grant(a7Memory)
		if err != nil {
			return Result{}, err
		}
		releases = append(releases, release)
	}

	host := cops[0].Host()
	n := a.N + b.N
	sumStats := func() sim.Stats {
		var st sim.Stats
		for _, c := range cops {
			st.Add(c.Stats())
		}
		return st
	}
	if n == 0 {
		out := host.FreshRegion("palg7.out", 0)
		return Result{Output: sim.Table{Region: out, N: 0, Schema: outSchema}, Stats: sumStats()}, nil
	}

	// Largest power-of-two device prefix, as in ParallelJoin3.
	ps := pow2Prefix(len(cops))
	sortAll := func(region sim.RegionID, n int64, less oblivious.LessFunc) error {
		return oblivious.ParallelSort(cops[:ps], region, n, less)
	}

	codecA := newA7Codec(pred, a.Schema, b.Schema)
	codecB := newA7Codec(pred, a.Schema, b.Schema) // sides run concurrently; codecs hold scratch

	w := host.FreshRegion("palg7.w", int(oblivious.NextPow2(n)))
	if err := cops[0].TransformRange(w, 0, a.Region, 0, a.N, func(_ int64, pt []byte) ([]byte, error) {
		return codecA.wrap(a7TagA, pt), nil
	}); err != nil {
		return Result{}, err
	}
	if err := cops[0].TransformRange(w, a.N, b.Region, 0, b.N, func(_ int64, pt []byte) ([]byte, error) {
		return codecA.wrap(a7TagB, pt), nil
	}); err != nil {
		return Result{}, err
	}
	if err := sortAll(w, n, codecA.lessKeyTag); err != nil {
		return Result{}, err
	}
	out, s, err := parallelJoin7Tail(cops, ps, codecA, codecB, w, n, outSchema)
	if err != nil {
		return Result{}, err
	}
	return Result{Output: out, OutputLen: s, Stats: sumStats()}, nil
}

// pow2Prefix returns the largest power of two <= n (n >= 1).
func pow2Prefix(n int) int {
	ps := 1
	for ps*2 <= n {
		ps *= 2
	}
	return ps
}

// parallelJoin7Tail runs phases 3–5 of the parallel Algorithm 7 over a
// key-sorted union held in the first n cells of w: index scans and stitch
// on device 0, the two side expansions concurrently on the two halves of
// the ps-device prefix, the B alignment sort on the whole prefix. Shared
// by ParallelJoin7 and ParallelJoin7Cached.
func parallelJoin7Tail(cops []*sim.Coprocessor, ps int, codecA, codecB *a7Codec, w sim.RegionID, n int64, outSchema *relation.Schema) (sim.Table, int64, error) {
	host := cops[0].Host()
	sortAll := func(region sim.RegionID, n int64, less oblivious.LessFunc) error {
		return oblivious.ParallelSort(cops[:ps], region, n, less)
	}
	// Each side expands on its own half of the prefix (the halves of a
	// power of two are powers of two); with one usable device both sides
	// still run concurrently, each on a single-device sorter.
	sideA, sideB := cops[:1], cops[:1]
	if ps >= 2 {
		sideA, sideB = cops[:ps/2], cops[ps/2:ps]
	} else if len(cops) >= 2 {
		sideB = cops[1:2]
	}
	sideSort := func(group []*sim.Coprocessor) a7SortFunc {
		return func(region sim.RegionID, n int64, less oblivious.LessFunc) error {
			return oblivious.ParallelSort(group, region, n, less)
		}
	}

	s, err := codecA.indexScans(cops[0], w, n)
	if err != nil {
		return sim.Table{}, 0, err
	}
	out := host.FreshRegion("palg7.out", int(s))
	if s == 0 {
		return sim.Table{Region: out, N: 0, Schema: outSchema}, 0, nil
	}

	var (
		wg     sync.WaitGroup
		ea, eb sim.RegionID
		errA   error
		errB   error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		ea, errA = codecA.expandSide(sideA[0], sideSort(sideA), w, n, s, a7TagA)
	}()
	go func() {
		defer wg.Done()
		eb, errB = codecB.expandSide(sideB[0], sideSort(sideB), w, n, s, a7TagB)
	}()
	wg.Wait()
	if errA != nil {
		return sim.Table{}, 0, errA
	}
	if errB != nil {
		return sim.Table{}, 0, errB
	}
	if err := sortAll(eb, s, codecA.lessDest); err != nil {
		return sim.Table{}, 0, err
	}
	if err := codecA.stitch(cops[0], out, ea, eb, s, outSchema); err != nil {
		return sim.Table{}, 0, err
	}
	return sim.Table{Region: out, N: s, Schema: outSchema}, s, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
