package core

import (
	"fmt"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// newFleet builds P coprocessors sharing one host and sealer.
func newFleet(t *testing.T, h *sim.Host, p, mem int) []*sim.Coprocessor {
	t.Helper()
	sealer := sim.PlainSealer{}
	cops := make([]*sim.Coprocessor, p)
	for i := range cops {
		var err error
		cops[i], err = sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sealer, Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cops
}

func TestParallelJoin2Correctness(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			relA, relB := relation.GenWithMatchBound(relation.NewRand(uint64(p)), 7, 12, 4)
			h := sim.NewHost(0)
			cops := newFleet(t, h, p, 8)
			tabA, _ := sim.LoadTable(h, cops[0].Sealer(), "A", relA)
			tabB, _ := sim.LoadTable(h, cops[0].Sealer(), "B", relB)
			pred := keyEqui(t, relA, relB)
			res, err := ParallelJoin2(cops, tabA, tabB, pred, 4, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeOutput(cops[0], res)
			if err != nil {
				t.Fatal(err)
			}
			want := relation.ReferenceJoin(relA, relB, pred)
			if !relation.SameMultiset(got, want) {
				t.Fatalf("p=%d: join mismatch %d vs %d rows", p, got.Len(), want.Len())
			}
		})
	}
}

func TestParallelJoin2LinearWorkSplit(t *testing.T) {
	// §4.4.4 "linear speed-up": per-device transfer counts shrink by ~P.
	relA, relB := relation.GenWithMatchBound(relation.NewRand(9), 8, 16, 4)
	run := func(p int) uint64 {
		h := sim.NewHost(0)
		cops := newFleet(t, h, p, 8)
		tabA, _ := sim.LoadTable(h, cops[0].Sealer(), "A", relA)
		tabB, _ := sim.LoadTable(h, cops[0].Sealer(), "B", relB)
		if _, err := ParallelJoin2(cops, tabA, tabB, keyEqui(t, relA, relB), 4, 0); err != nil {
			t.Fatal(err)
		}
		maxT := uint64(0)
		for _, c := range cops {
			if tr := c.Stats().Transfers(); tr > maxT {
				maxT = tr
			}
		}
		return maxT
	}
	t1, t4 := run(1), run(4)
	if t4*3 > t1 {
		t.Fatalf("per-device work did not shrink ~linearly: 1 dev %d, 4 devs max %d", t1, t4)
	}
}

func TestParallelJoin5Correctness(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, s := range []int{0, 5, 11} {
			t.Run(fmt.Sprintf("p=%d_s=%d", p, s), func(t *testing.T) {
				relA, relB := genJoinSized(uint64(p*100+s), 6, 11, s)
				h := sim.NewHost(0)
				cops := newFleet(t, h, p, 2)
				tabs := []sim.Table{}
				for i, rel := range []*relation.Relation{relA, relB} {
					tab, err := sim.LoadTable(h, cops[0].Sealer(), fmt.Sprintf("X%d", i), rel)
					if err != nil {
						t.Fatal(err)
					}
					tabs = append(tabs, tab)
				}
				pred := relation.Pairwise(keyEqui(t, relA, relB))
				res, err := ParallelJoin5(cops, tabs, pred)
				if err != nil {
					t.Fatal(err)
				}
				got, err := DecodeOutput(cops[0], res)
				if err != nil {
					t.Fatal(err)
				}
				want := relation.ReferenceMultiJoin([]*relation.Relation{relA, relB}, pred)
				if !relation.SameMultiset(got, want) {
					t.Fatalf("join mismatch: %d vs %d rows", got.Len(), want.Len())
				}
			})
		}
	}
}

func TestParallelJoin4Correctness(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			relA, relB := genJoinSized(uint64(p), 5, 8, 6)
			h := sim.NewHost(0)
			cops := newFleet(t, h, p, 4)
			tabs := []sim.Table{}
			for i, rel := range []*relation.Relation{relA, relB} {
				tab, err := sim.LoadTable(h, cops[0].Sealer(), fmt.Sprintf("X%d", i), rel)
				if err != nil {
					t.Fatal(err)
				}
				tabs = append(tabs, tab)
			}
			pred := relation.Pairwise(keyEqui(t, relA, relB))
			res, err := ParallelJoin4(cops, tabs, pred)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeOutput(cops[0], res)
			if err != nil {
				t.Fatal(err)
			}
			want := relation.ReferenceMultiJoin([]*relation.Relation{relA, relB}, pred)
			if !relation.SameMultiset(got, want) {
				t.Fatalf("join mismatch: %d vs %d rows", got.Len(), want.Len())
			}
		})
	}
}

func TestParallelJoin4PerDeviceTraceDataIndependent(t *testing.T) {
	run := func(seed uint64) []uint64 {
		relA, relB := genJoinSized(seed, 6, 8, 5)
		h := sim.NewHost(0)
		cops := newFleet(t, h, 4, 4)
		tabs := []sim.Table{}
		for i, rel := range []*relation.Relation{relA, relB} {
			tab, err := sim.LoadTable(h, cops[0].Sealer(), fmt.Sprintf("X%d", i), rel)
			if err != nil {
				t.Fatal(err)
			}
			tabs = append(tabs, tab)
		}
		pred := relation.Pairwise(keyEqui(t, relA, relB))
		if _, err := ParallelJoin4(cops, tabs, pred); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(cops))
		for i, c := range cops {
			out[i] = c.Trace().Digest()
		}
		return out
	}
	a, b := run(41), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("device %d access pattern depends on data", i)
		}
	}
}

func TestParallelValidation(t *testing.T) {
	relA, relB := genJoinSized(1, 3, 3, 2)
	h := sim.NewHost(0)
	tabA, _ := sim.LoadTable(h, sim.PlainSealer{}, "A", relA)
	tabB, _ := sim.LoadTable(h, sim.PlainSealer{}, "B", relB)
	pred := keyEqui(t, relA, relB)
	if _, err := ParallelJoin2(nil, tabA, tabB, pred, 1, 0); err == nil {
		t.Error("no coprocessors accepted by ParallelJoin2")
	}
	if _, err := ParallelJoin5(nil, []sim.Table{tabA, tabB}, relation.Pairwise(pred)); err == nil {
		t.Error("no coprocessors accepted by ParallelJoin5")
	}
	if _, err := ParallelJoin4(nil, []sim.Table{tabA, tabB}, relation.Pairwise(pred)); err == nil {
		t.Error("no coprocessors accepted by ParallelJoin4")
	}
}

func TestParallelJoin2PerDeviceTraceDataIndependent(t *testing.T) {
	run := func(seed uint64) []uint64 {
		relA, relB := relation.GenWithMatchBound(relation.NewRand(seed), 8, 16, 4)
		h := sim.NewHost(0)
		cops := newFleet(t, h, 4, 8)
		tabA, _ := sim.LoadTable(h, cops[0].Sealer(), "A", relA)
		tabB, _ := sim.LoadTable(h, cops[0].Sealer(), "B", relB)
		if _, err := ParallelJoin2(cops, tabA, tabB, keyEqui(t, relA, relB), 4, 0); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(cops))
		for i, c := range cops {
			out[i] = c.Trace().Digest()
		}
		return out
	}
	a, b := run(61), run(62)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("device %d access pattern depends on data", i)
		}
	}
}

func TestParallelJoin5PerDeviceTraceDataIndependent(t *testing.T) {
	run := func(seed uint64) []uint64 {
		relA, relB := genJoinSized(seed, 6, 10, 7)
		h := sim.NewHost(0)
		cops := newFleet(t, h, 2, 2)
		tabA, _ := sim.LoadTable(h, cops[0].Sealer(), "X1", relA)
		tabB, _ := sim.LoadTable(h, cops[0].Sealer(), "X2", relB)
		pred := relation.Pairwise(keyEqui(t, relA, relB))
		if _, err := ParallelJoin5(cops, []sim.Table{tabA, tabB}, pred); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(cops))
		for i, c := range cops {
			out[i] = c.Trace().Digest()
		}
		return out
	}
	a, b := run(71), run(72)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("device %d access pattern depends on data", i)
		}
	}
}
