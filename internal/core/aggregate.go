package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// This file implements the aggregation extension the thesis poses as future
// work (Chapter 6): "Aggregation queries output statistics over the join of
// two tables. It is not necessary to materialize the join result, but only
// to give statistics over the join table. In this case, we only need to
// worry about leaking information when accessing the input tables, but not
// the output tables. Do efficient algorithms exist for this simplified
// task?"
//
// The answer in the coprocessor model is yes, and trivially so: the
// accumulator lives entirely inside T, so a single fixed-order scan of D
// suffices — cost L+1, one pass, with an access pattern that is a function
// of L alone (it does not even depend on S). This beats every
// materialising algorithm of Chapter 5 and realises the one-pass behaviour
// the thesis wonders about, for the aggregate special case.

// AggKind enumerates the supported aggregates.
type AggKind uint8

const (
	// AggCount counts joining iTuples.
	AggCount AggKind = iota
	// AggSum sums a numeric attribute over joining iTuples.
	AggSum
	// AggMin takes the minimum of a numeric attribute.
	AggMin
	// AggMax takes the maximum of a numeric attribute.
	AggMax
	// AggAvg averages a numeric attribute.
	AggAvg
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "COUNT(*)"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// AggSpec selects an aggregate over the join of the input tables. For
// everything but AggCount, Table/Attr locate the aggregated numeric
// attribute (Int64 or Float64) in one of the input tables.
type AggSpec struct {
	Kind  AggKind
	Table int
	Attr  string
}

// AggResult is the single statistic an aggregation query outputs.
type AggResult struct {
	Kind  AggKind
	Count int64
	// Value holds the sum, min, max or average as a float; for AggCount it
	// mirrors Count.
	Value float64
	// Valid is false for MIN/MAX/AVG over an empty join.
	Valid bool
	Stats sim.Stats
}

// Aggregate computes a privacy preserving aggregation over the join of the
// tables: a single fixed-order scan of D with the accumulator inside T,
// followed by one encrypted output cell. The host sees L logical reads and
// one put — a pattern independent of every input value and even of the
// join size.
func Aggregate(t *sim.Coprocessor, tables []sim.Table, pred relation.MultiPredicate, spec AggSpec) (AggResult, error) {
	_, cart, err := prepCh5(t, tables)
	if err != nil {
		return AggResult{}, err
	}
	attrIdx := -1
	var attrType relation.AttrType
	if spec.Kind != AggCount {
		if spec.Table < 0 || spec.Table >= len(tables) {
			return AggResult{}, fmt.Errorf("%w: aggregate table %d out of range", errInvalid, spec.Table)
		}
		schema := tables[spec.Table].Schema
		attrIdx = schema.Index(spec.Attr)
		if attrIdx < 0 {
			return AggResult{}, fmt.Errorf("%w: no attribute %q in table %d", errInvalid, spec.Attr, spec.Table)
		}
		attrType = schema.Attr(attrIdx).Type
		if attrType != relation.Int64 && attrType != relation.Float64 {
			return AggResult{}, fmt.Errorf("%w: aggregate over non-numeric attribute %q", errInvalid, spec.Attr)
		}
	}
	t.ResetStats()

	res := AggResult{Kind: spec.Kind}
	var sum float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	l := cart.Size()
	for i := int64(0); i < l; i++ {
		row, err := cart.Read(i)
		if err != nil {
			return AggResult{}, err
		}
		t.ChargePredicate()
		if !pred.Satisfy(row) {
			continue
		}
		res.Count++
		if attrIdx >= 0 {
			var v float64
			if attrType == relation.Int64 {
				v = float64(row[spec.Table][attrIdx].I)
			} else {
				v = row[spec.Table][attrIdx].F
			}
			sum += v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	switch spec.Kind {
	case AggCount:
		res.Value = float64(res.Count)
		res.Valid = true
	case AggSum:
		res.Value = sum
		res.Valid = true
	case AggMin:
		res.Value, res.Valid = minV, res.Count > 0
	case AggMax:
		res.Value, res.Valid = maxV, res.Count > 0
	case AggAvg:
		if res.Count > 0 {
			res.Value, res.Valid = sum/float64(res.Count), true
		}
	default:
		return AggResult{}, fmt.Errorf("%w: unknown aggregate %d", errInvalid, spec.Kind)
	}

	// The single output cell: fixed size regardless of the statistic.
	out := t.Host().FreshRegion("agg.out", 1)
	cell := make([]byte, 17)
	binary.BigEndian.PutUint64(cell[0:], uint64(res.Count))
	binary.BigEndian.PutUint64(cell[8:], math.Float64bits(res.Value))
	if res.Valid {
		cell[16] = 1
	}
	if err := t.Put(out, 0, cell); err != nil {
		return AggResult{}, err
	}
	if err := t.RequestDisk(out, 0, 1); err != nil {
		return AggResult{}, err
	}
	res.Stats = t.Stats()
	return res, nil
}

// AggregateTransfers is the exact transfer count: the sequential-scan gets
// of D plus the single output put.
func AggregateTransfers(sizes []int64) int64 {
	l := int64(1)
	gets := int64(0)
	for _, n := range sizes {
		gets += l * n
		l *= n
	}
	return gets + 1
}
