package core

import (
	"fmt"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// This file adds the cross-query sorted-relation cache to Algorithm 7 —
// the amortization idea of "Equi-Joins over Encrypted Data for Series of
// Queries" (PAPERS.md) adapted to the coprocessor model. The dominant cost
// of a join is obliviously sorting the inputs; when a series of jobs over
// the same contract consumes an unchanged sealed upload, the sorted form
// of that side can be reused instead of re-sorted.
//
// The cached layout splits the working array into two fixed halves of
// halfM = max(NextPow2(|A|), NextPow2(|B|)) cells: side A sorts (or is
// restored) into [0, halfM), side B into [halfM, 2·halfM), each ascending
// by (key, tag) with padding maximal at its top, and one odd-even merge of
// the two halves yields the same key-sorted union Join7's monolithic sort
// produces. The tail (index scans, expansion, alignment, stitch) is shared
// verbatim with Join7.
//
// Leakage: whether a side hits is a host-visible bit — the host sees a
// restore (halfM puts) instead of a sort. But the bit is a pure function
// of public metadata (the cache key: contract, side, public size, upload
// digest computed inside T), i.e. it reveals only "this upload equals a
// previous upload of this contract", which the host already knows from
// observing identical sealed upload traffic sizes and the server's own
// manifest. Conditioned on the hit/miss bits, every transfer schedule
// below is a pure function of (|A|, |B|, S) — pinned by
// Join7CachedTransfers and the access-pattern invariance tests.

// SortedCache is the reuse seam between executions: a store of obliviously
// sorted working-cell arrays keyed by public metadata plus an in-enclave
// upload digest. Implementations must return cells equal to what Store
// received (the server seals them at rest); a failed or declined Store is
// harmless — the next run simply sorts cold again.
type SortedCache interface {
	// Lookup returns the cached sorted cells for a key, if present.
	Lookup(key string) ([][]byte, bool)
	// Store offers the sorted cells for a key; implementations may decline.
	Store(key string, cells [][]byte)
}

// CacheUse reports how the cache participated in one join.
type CacheUse struct {
	TriedA, TriedB bool // side was non-empty with a key and a cache to consult
	HitA, HitB     bool // side restored a cached sorted form instead of sorting
}

// Hits counts sides restored from the cache.
func (u CacheUse) Hits() int {
	n := 0
	if u.HitA {
		n++
	}
	if u.HitB {
		n++
	}
	return n
}

// Misses counts sides that consulted the cache and sorted cold.
func (u CacheUse) Misses() int {
	n := 0
	if u.TriedA && !u.HitA {
		n++
	}
	if u.TriedB && !u.HitB {
		n++
	}
	return n
}

// Join7Cached runs Algorithm 7 with the sorted-relation cache: each side's
// sorted half is restored from the cache when its key hits, sorted in
// place (and offered back to the cache) otherwise, and the halves are
// merged with Batcher's odd-even merge before the shared Join7 tail. A nil
// cache or empty key disables caching for that side, which then costs one
// readback less than a miss.
func Join7Cached(t *sim.Coprocessor, a, b sim.Table, pred *relation.Equi, cache SortedCache, keyA, keyB string) (Result, CacheUse, error) {
	var use CacheUse
	if a.N < 0 || b.N < 0 {
		return Result{}, use, fmt.Errorf("%w: negative relation size", errInvalid)
	}
	if pred == nil {
		return Result{}, use, fmt.Errorf("%w: alg7 needs an equality predicate", errInvalid)
	}
	if !pred.Orderable() {
		return Result{}, use, fmt.Errorf("%w: alg7 needs an orderable join attribute", errInvalid)
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, use, err
	}
	t.ResetStats()
	release, err := t.Grant(a7Memory)
	if err != nil {
		return Result{}, use, err
	}
	defer release()

	host := t.Host()
	codec := newA7Codec(pred, a.Schema, b.Schema)
	n := a.N + b.N
	if n == 0 {
		out := host.FreshRegion("alg7.out", 0)
		return Result{Output: sim.Table{Region: out, N: 0, Schema: outSchema}, Stats: t.Stats()}, use, nil
	}

	halfM := a7HalfM(a.N, b.N)
	w := host.FreshRegion("alg7.w", int(2*halfM))
	spanSort := func(lo, q int64) error {
		return oblivious.SortSpan(t, w, lo, q, codec.lessKeyTag)
	}
	use.TriedA, use.HitA, err = codec.buildSortedHalf(t, spanSort, w, 0, halfM, a, a7TagA, cache, keyA)
	if err != nil {
		return Result{}, use, err
	}
	use.TriedB, use.HitB, err = codec.buildSortedHalf(t, spanSort, w, halfM, halfM, b, a7TagB, cache, keyB)
	if err != nil {
		return Result{}, use, err
	}
	if err := oblivious.MergeHalves(t, w, 2*halfM, codec.lessKeyTag); err != nil {
		return Result{}, use, err
	}

	sort := func(region sim.RegionID, n int64, less oblivious.LessFunc) error {
		return oblivious.Sort(t, region, n, less)
	}
	out, s, err := join7Tail(t, codec, sort, w, n, outSchema, "alg7.out")
	if err != nil {
		return Result{}, use, err
	}
	return Result{Output: out, OutputLen: s, Stats: t.Stats()}, use, nil
}

// ParallelJoin7Cached is Join7Cached over P coprocessors: the cold side
// sorts and the half merge run on the parallel networks over the largest
// power-of-two device prefix; restores, scans, and the stitch stay on
// device 0; the tail is shared with ParallelJoin7. Summed per-device stats
// remain a pure function of (|A|, |B|, S, P) conditioned on the hit bits.
func ParallelJoin7Cached(cops []*sim.Coprocessor, a, b sim.Table, pred *relation.Equi, cache SortedCache, keyA, keyB string) (Result, CacheUse, error) {
	var use CacheUse
	if len(cops) == 0 {
		return Result{}, use, fmt.Errorf("%w: no coprocessors", errInvalid)
	}
	if len(cops) == 1 {
		return Join7Cached(cops[0], a, b, pred, cache, keyA, keyB)
	}
	if a.N < 0 || b.N < 0 {
		return Result{}, use, fmt.Errorf("%w: negative relation size", errInvalid)
	}
	if pred == nil {
		return Result{}, use, fmt.Errorf("%w: alg7 needs an equality predicate", errInvalid)
	}
	if !pred.Orderable() {
		return Result{}, use, fmt.Errorf("%w: alg7 needs an orderable join attribute", errInvalid)
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, use, err
	}
	for _, c := range cops {
		c.ResetStats()
	}
	releases := make([]func(), 0, len(cops))
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, c := range cops {
		release, err := c.Grant(a7Memory)
		if err != nil {
			return Result{}, use, err
		}
		releases = append(releases, release)
	}

	host := cops[0].Host()
	n := a.N + b.N
	sumStats := func() sim.Stats {
		var st sim.Stats
		for _, c := range cops {
			st.Add(c.Stats())
		}
		return st
	}
	if n == 0 {
		out := host.FreshRegion("palg7.out", 0)
		return Result{Output: sim.Table{Region: out, N: 0, Schema: outSchema}, Stats: sumStats()}, use, nil
	}

	ps := pow2Prefix(len(cops))
	codecA := newA7Codec(pred, a.Schema, b.Schema)
	codecB := newA7Codec(pred, a.Schema, b.Schema)

	halfM := a7HalfM(a.N, b.N)
	w := host.FreshRegion("palg7.w", int(2*halfM))
	spanSort := func(lo, q int64) error {
		return oblivious.ParallelSortSpan(cops[:ps], w, lo, q, codecA.lessKeyTag)
	}
	use.TriedA, use.HitA, err = codecA.buildSortedHalf(cops[0], spanSort, w, 0, halfM, a, a7TagA, cache, keyA)
	if err != nil {
		return Result{}, use, err
	}
	use.TriedB, use.HitB, err = codecA.buildSortedHalf(cops[0], spanSort, w, halfM, halfM, b, a7TagB, cache, keyB)
	if err != nil {
		return Result{}, use, err
	}
	if err := oblivious.ParallelMergeHalves(cops[:ps], w, 2*halfM, codecA.lessKeyTag); err != nil {
		return Result{}, use, err
	}
	out, s, err := parallelJoin7Tail(cops, ps, codecA, codecB, w, n, outSchema)
	if err != nil {
		return Result{}, use, err
	}
	return Result{Output: out, OutputLen: s, Stats: sumStats()}, use, nil
}

// a7HalfM is the fixed size of each side's half of the cached working
// array: both halves share the larger side's power-of-two envelope so the
// merged array is a power of two.
func a7HalfM(aN, bN int64) int64 {
	h := oblivious.NextPow2(aN)
	if hb := oblivious.NextPow2(bN); hb > h {
		h = hb
	}
	return h
}

// a7SpanSort sorts the q cells at lo of the cached working array.
type a7SpanSort func(lo, q int64) error

// buildSortedHalf establishes one side's half of the working array, cells
// [lo, lo+halfM): the side's rows sorted ascending by (key, tag) followed
// by maximal padding. On a cache hit the sorted cells are restored with
// halfM puts; cold, the side is wrapped in (2q transfers), span-sorted,
// padded, and — when a cache participates — read back (q gets) and offered
// to it. An empty side is pure padding and never consults the cache.
func (c *a7Codec) buildSortedHalf(t *sim.Coprocessor, spanSort a7SpanSort, w sim.RegionID, lo, halfM int64, side sim.Table, tag byte, cache SortedCache, key string) (tried, hit bool, err error) {
	q := side.N
	if q == 0 {
		return false, false, oblivious.PadRange(t, w, lo, lo+halfM)
	}
	tried = cache != nil && key != ""
	if tried {
		if cells, ok := cache.Lookup(key); ok && c.validSortedCells(cells, q) {
			if err := c.restoreSorted(t, w, lo, cells); err != nil {
				return tried, false, err
			}
			return tried, true, oblivious.PadRange(t, w, lo+q, lo+halfM)
		}
	}
	if err := t.TransformRange(w, lo, side.Region, 0, q, func(_ int64, pt []byte) ([]byte, error) {
		return c.wrap(tag, pt), nil
	}); err != nil {
		return tried, false, err
	}
	if err := spanSort(lo, q); err != nil {
		return tried, false, err
	}
	if err := oblivious.PadRange(t, w, lo+oblivious.NextPow2(q), lo+halfM); err != nil {
		return tried, false, err
	}
	if tried {
		cells, err := c.readSorted(t, w, lo, q)
		if err != nil {
			return tried, false, err
		}
		cache.Store(key, cells)
	}
	return tried, false, nil
}

// validSortedCells accepts a cached entry only if it has exactly the
// side's row count of working cells of this join's cell size; anything
// else is treated as a miss.
func (c *a7Codec) validSortedCells(cells [][]byte, q int64) bool {
	if int64(len(cells)) != q {
		return false
	}
	for _, cell := range cells {
		if len(cell) != c.cell {
			return false
		}
	}
	return true
}

// restoreSorted writes a cached sorted half back into the working array.
func (c *a7Codec) restoreSorted(t *sim.Coprocessor, w sim.RegionID, lo int64, cells [][]byte) error {
	for off := int64(0); off < int64(len(cells)); off += sim.TransferBatch {
		chunk := min64(sim.TransferBatch, int64(len(cells))-off)
		if err := t.PutRange(w, lo+off, cells[off:off+chunk]); err != nil {
			return err
		}
	}
	return nil
}

// readSorted snapshots a freshly sorted half out of the working array so
// it can be offered to the cache. The cells still carry zeroed index
// fields (the scans run after the merge), so the snapshot is exactly what
// a future restore must replay.
func (c *a7Codec) readSorted(t *sim.Coprocessor, w sim.RegionID, lo, q int64) ([][]byte, error) {
	cells := make([][]byte, 0, q)
	for off := int64(0); off < q; off += sim.TransferBatch {
		chunk := min64(sim.TransferBatch, q-off)
		pts, err := t.GetRange(w, lo+off, chunk)
		if err != nil {
			return nil, err
		}
		for _, pt := range pts {
			cells = append(cells, append([]byte(nil), pt...))
		}
	}
	return cells, nil
}

// Join7CachedTransfers is the exact transfer count of Join7Cached with a
// participating cache on both non-empty sides:
//
//	side(q, hit) = halfM                                     hit or empty
//	             = 2q + halfM + 4·Comparators(NextPow2(q))   miss
//	+ Merge(2·halfM) + 6n                                    half merge, scans
//	+ 2·[2n + Sort(n) + 2t + (m−t) + Dist(m) + 2S]           per-side expansion
//	+ Sort(S) + 3S                                           alignment, stitch
//
// with halfM = max(NextPow2(|A|), NextPow2(|B|)), n = |A|+|B|, t = min(n,
// S), m = NextPow2(S). The miss term is wrap (2q) + pads (halfM−q) + the
// span sort's comparators + the cache readback (q); the hit term is the
// bare halfM-cell restore. Everything from the merge on is independent of
// the hit bits — the cache can only remove work, never reshape the tail.
func Join7CachedTransfers(aN, bN, s int64, hitA, hitB bool) int64 {
	n := aN + bN
	if n == 0 {
		return 0
	}
	halfM := a7HalfM(aN, bN)
	side := func(q int64, hit bool) int64 {
		if q == 0 || hit {
			return halfM
		}
		return 2*q + halfM + 4*oblivious.Comparators(oblivious.NextPow2(q))
	}
	total := side(aN, hitA) + side(bN, hitB) +
		oblivious.MergeHalvesTransfers(2*halfM) + 6*n
	if s == 0 {
		return total
	}
	m := oblivious.NextPow2(s)
	tx := min64(n, s)
	exp := 2*n + oblivious.SortTransfers(n) + 2*tx + (m - tx) +
		oblivious.DistributeTransfers(m) + 2*s
	return total + 2*exp + oblivious.SortTransfers(s) + 3*s
}
