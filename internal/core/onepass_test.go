package core

import (
	"strings"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

func TestJoin6OnePassCorrectness(t *testing.T) {
	for _, sh := range []struct{ nA, nB, s, m int }{
		{6, 10, 7, 3},  // segmented path (S > M)
		{6, 10, 4, 64}, // single sequential pass (S <= M)
		{5, 9, 0, 4},   // empty join
	} {
		relA, relB := genJoinSized(uint64(sh.nA*31+sh.s), sh.nA, sh.nB, sh.s)
		h := sim.NewHost(0)
		cop := newCop(t, h, sh.m, 7)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		pred := relation.Pairwise(keyEqui(t, relA, relB))
		rep, err := Join6OnePass(cop, tabs, pred, 1e-9, int64(sh.s))
		if err != nil {
			t.Fatalf("%+v: %v", sh, err)
		}
		checkMultiJoin(t, cop, rep.Result, []*relation.Relation{relA, relB}, pred)
	}
}

func TestJoin6OnePassSavesTheScreeningPass(t *testing.T) {
	// The whole point: with S known a priori, the read cost drops by a full
	// pass over D compared to Algorithm 6.
	relA, relB := genJoinSized(53, 8, 12, 9)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	run := func(onePass bool) sim.Stats {
		h := sim.NewHost(0)
		cop := newCop(t, h, 3, 7)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		if onePass {
			rep, err := Join6OnePass(cop, tabs, pred, 1e-9, 9)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Blemished {
				t.Skip("blemished run")
			}
			return rep.Stats
		}
		rep, err := Join6(cop, tabs, pred, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Blemished {
			t.Skip("blemished run")
		}
		return rep.Stats
	}
	one := run(true)
	two := run(false)
	l := uint64(8 * 12)
	if one.LogicalReads+l != two.LogicalReads {
		t.Fatalf("one-pass logical reads %d, two-pass %d: difference should be exactly L=%d",
			one.LogicalReads, two.LogicalReads, l)
	}
}

func TestJoin6OnePassRejectsWrongS(t *testing.T) {
	relA, relB := genJoinSized(59, 6, 10, 7)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	for _, wrongS := range []int64{6, 8} { // under- and over-declared
		h := sim.NewHost(0)
		cop := newCop(t, h, 3, 7)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		_, err := Join6OnePass(cop, tabs, pred, 1e-9, wrongS)
		if err == nil || !strings.Contains(err.Error(), "declared S") {
			t.Fatalf("declared S=%d (true 7): err = %v", wrongS, err)
		}
	}
	// And for the S <= M path.
	h := sim.NewHost(0)
	cop := newCop(t, h, 64, 7)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	if _, err := Join6OnePass(cop, tabs, pred, 1e-9, 3); err == nil {
		t.Fatal("under-declared S accepted on the sequential path")
	}
}

func TestJoin6OnePassValidation(t *testing.T) {
	relA, relB := genJoinSized(61, 3, 3, 2)
	h := sim.NewHost(0)
	cop := newCop(t, h, 2, 7)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	if _, err := Join6OnePass(cop, tabs, pred, -1, 2); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := Join6OnePass(cop, tabs, pred, 0.5, -1); err == nil {
		t.Error("negative S accepted")
	}
}

func TestJoin6OnePassPrivacyTraceIdentical(t *testing.T) {
	// The access pattern is a function of (L, knownS, M, eps) only.
	const nA, nB, s, m = 6, 10, 7, 3
	digest := func(seed uint64) (uint64, uint64) {
		relA, relB := genJoinSized(seed, nA, nB, s)
		h := sim.NewHost(0)
		cop := newCop(t, h, m, 77)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		pred := relation.Pairwise(keyEqui(t, relA, relB))
		if _, err := Join6OnePass(cop, tabs, pred, 1e-9, s); err != nil {
			t.Fatal(err)
		}
		return h.Trace().Digest(), h.Trace().Count()
	}
	d1, c1 := digest(301)
	d2, c2 := digest(302)
	if d1 != d2 || c1 != c2 {
		t.Fatal("one-pass access pattern depends on relation contents")
	}
}
