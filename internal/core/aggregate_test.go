package core

import (
	"errors"
	"math"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// refAggregate computes the oracle statistic over the reference join.
func refAggregate(rels []*relation.Relation, pred relation.MultiPredicate, spec AggSpec) (int64, float64, bool) {
	join := relation.ReferenceMultiJoin(rels, pred)
	count := int64(join.Len())
	if spec.Kind == AggCount {
		return count, float64(count), true
	}
	// Locate the attribute inside the concatenated schema.
	off := 0
	for i := 0; i < spec.Table; i++ {
		off += rels[i].Schema.NumAttrs()
	}
	idx := off + rels[spec.Table].Schema.Index(spec.Attr)
	typ := rels[spec.Table].Schema.Attr(rels[spec.Table].Schema.Index(spec.Attr)).Type
	var sum float64
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range join.Rows {
		var v float64
		if typ == relation.Int64 {
			v = float64(row[idx].I)
		} else {
			v = row[idx].F
		}
		sum += v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	switch spec.Kind {
	case AggSum:
		return count, sum, true
	case AggMin:
		return count, minV, count > 0
	case AggMax:
		return count, maxV, count > 0
	default: // AggAvg
		if count == 0 {
			return 0, 0, false
		}
		return count, sum / float64(count), true
	}
}

func aggEnv(t *testing.T, seed uint64, s int) (*sim.Coprocessor, []sim.Table, []*relation.Relation, relation.MultiPredicate) {
	t.Helper()
	relA, relB := genJoinSized(seed, 7, 11, s)
	h := sim.NewHost(0)
	cop := newCop(t, h, 4, 13)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	return cop, tabs, []*relation.Relation{relA, relB}, pred
}

func TestAggregateAllKinds(t *testing.T) {
	specs := []AggSpec{
		{Kind: AggCount},
		{Kind: AggSum, Table: 1, Attr: "payload"},
		{Kind: AggMin, Table: 1, Attr: "payload"},
		{Kind: AggMax, Table: 0, Attr: "payload"},
		{Kind: AggAvg, Table: 1, Attr: "payload"},
	}
	for _, spec := range specs {
		t.Run(spec.Kind.String(), func(t *testing.T) {
			cop, tabs, rels, pred := aggEnv(t, 31, 6)
			got, err := Aggregate(cop, tabs, pred, spec)
			if err != nil {
				t.Fatal(err)
			}
			wantCount, wantVal, wantValid := refAggregate(rels, pred, spec)
			if got.Count != wantCount || got.Valid != wantValid {
				t.Fatalf("count/valid = %d/%v, want %d/%v", got.Count, got.Valid, wantCount, wantValid)
			}
			if wantValid && math.Abs(got.Value-wantVal) > 1e-9 {
				t.Fatalf("value = %g, want %g", got.Value, wantVal)
			}
		})
	}
}

func TestAggregateEmptyJoin(t *testing.T) {
	cop, tabs, _, pred := aggEnv(t, 37, 0)
	got, err := Aggregate(cop, tabs, pred, AggSpec{Kind: AggMin, Table: 0, Attr: "payload"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 0 || got.Valid {
		t.Fatalf("empty join: %+v", got)
	}
	gotAvg, err := Aggregate(cop, tabs, pred, AggSpec{Kind: AggAvg, Table: 0, Attr: "payload"})
	if err != nil {
		t.Fatal(err)
	}
	if gotAvg.Valid {
		t.Fatal("AVG over empty join should be invalid")
	}
}

func TestAggregateTransfersExact(t *testing.T) {
	cop, tabs, _, pred := aggEnv(t, 41, 5)
	got, err := Aggregate(cop, tabs, pred, AggSpec{Kind: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if want := AggregateTransfers([]int64{7, 11}); int64(got.Stats.Transfers()) != want {
		t.Fatalf("transfers %d, want %d", got.Stats.Transfers(), want)
	}
}

func TestAggregatePatternIndependentOfJoinSize(t *testing.T) {
	// Stronger than the materialising algorithms: the trace does not even
	// depend on S, only on L.
	digest := func(s int) (uint64, uint64) {
		relA, relB := genJoinSized(uint64(100+s), 7, 11, s)
		h := sim.NewHost(0)
		cop := newCop(t, h, 4, 13)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		pred := relation.Pairwise(keyEqui(t, relA, relB))
		if _, err := Aggregate(cop, tabs, pred, AggSpec{Kind: AggCount}); err != nil {
			t.Fatal(err)
		}
		return h.Trace().Digest(), h.Trace().Count()
	}
	d0, c0 := digest(0)
	d9, c9 := digest(9)
	if d0 != d9 || c0 != c9 {
		t.Fatal("aggregate access pattern depends on the join size")
	}
}

func TestAggregateValidation(t *testing.T) {
	cop, tabs, _, pred := aggEnv(t, 43, 3)
	if _, err := Aggregate(cop, tabs, pred, AggSpec{Kind: AggSum, Table: 9, Attr: "payload"}); !errors.Is(err, errInvalid) {
		t.Error("out-of-range table accepted")
	}
	if _, err := Aggregate(cop, tabs, pred, AggSpec{Kind: AggSum, Table: 0, Attr: "nope"}); !errors.Is(err, errInvalid) {
		t.Error("missing attribute accepted")
	}
	if _, err := Aggregate(cop, tabs, pred, AggSpec{Kind: AggKind(99)}); !errors.Is(err, errInvalid) {
		t.Error("unknown aggregate kind accepted")
	}
	person := relation.GenPersons(relation.NewRand(1), 3, 5)
	h := sim.NewHost(0)
	cop2 := newCop(t, h, 4, 13)
	tabs2 := loadTables(t, h, cop2.Sealer(), person, person)
	if _, err := Aggregate(cop2, tabs2, pred, AggSpec{Kind: AggSum, Table: 0, Attr: "name"}); !errors.Is(err, errInvalid) {
		t.Error("non-numeric attribute accepted")
	}
}
