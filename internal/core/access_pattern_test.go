package core

import (
	"testing"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// These tests pin the obliviousness guarantees (Def. 1 §4.2, Def. 3
// §5.1.2) at the counter level: two executions over relations that agree
// only on the public parameters — sizes and N for Algorithm 3; sizes, S
// and M for Algorithm 5 — but differ in tuple contents, data seeds, and
// coprocessor seeds must charge exactly the same Stats. A refactor that
// made any counter data-dependent (an early exit, a skipped dummy write, a
// content-sensitive buffer flush) would break these before it ever reached
// the full trace-equality privacy suite.

// TestAccessPatternInvarianceAlg3 runs Algorithm 3 on two unrelated inputs
// sharing (|A|, |B|, N) and asserts identical counters.
func TestAccessPatternInvarianceAlg3(t *testing.T) {
	const (
		nA = 9
		nB = 14
		n  = 3
	)
	run := func(dataSeed, copSeed uint64) sim.Stats {
		t.Helper()
		relA, relB := relation.GenWithMatchBound(relation.NewRand(dataSeed), nA, nB, n)
		h := sim.NewHost(0)
		cop := newCop(t, h, 64, copSeed)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		res, err := Join3(cop, tabs[0], tabs[1], keyEqui(t, relA, relB), n, false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	s1, s2 := run(1001, 7), run(2002, 8)
	if s1.Transfers() == 0 || s1.PredEvals == 0 {
		t.Fatalf("degenerate run: %+v", s1)
	}
	if s1 != s2 {
		t.Fatalf("alg3 access pattern depends on tuple contents:\n run1 %+v\n run2 %+v", s1, s2)
	}
}

// TestAccessPatternInvarianceAlg5 runs Algorithm 5 on two unrelated inputs
// sharing (|R1|, |R2|, S, M) — S > M so the multi-scan flush discipline is
// exercised — and asserts identical counters.
func TestAccessPatternInvarianceAlg5(t *testing.T) {
	const (
		nA = 8
		nB = 12
		s  = 6
		m  = 3
	)
	run := func(dataSeed, copSeed uint64) sim.Stats {
		t.Helper()
		relA, relB := genJoinSized(dataSeed, nA, nB, s)
		h := sim.NewHost(0)
		cop := newCop(t, h, m, copSeed)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		res, err := Join5(cop, tabs, relation.Pairwise(keyEqui(t, relA, relB)))
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputLen != s {
			t.Fatalf("output length %d, want exact S=%d (the public size the pattern may reveal)", res.OutputLen, s)
		}
		return res.Stats
	}
	s1, s2 := run(3003, 17), run(4004, 18)
	if s1.LogicalReads == 0 || s1.PredEvals == 0 {
		t.Fatalf("degenerate run: %+v", s1)
	}
	if s1 != s2 {
		t.Fatalf("alg5 access pattern depends on tuple contents:\n run1 %+v\n run2 %+v", s1, s2)
	}
}
