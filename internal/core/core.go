// Package core implements the paper's contribution: the privacy preserving
// join algorithms. Chapter 4's Algorithms 1-3 operate on two relations with
// a public match bound N (the maximum number of B tuples joining any single
// A tuple); Chapter 5's Algorithms 4-6 operate on the cartesian product of
// any number of relations and reveal only the public sizes (L, S, M).
//
// Every algorithm takes a sim.Coprocessor and leaves its encrypted output in
// a host region of fixed-size oTuple cells; an oTuple is either a real join
// result or a decoy — "a string of a fixed pattern with the same length as a
// real join result" (§5.2.1) — indistinguishable once encrypted. The package
// also contains the unsafe designs the paper dissects (naive nested loop,
// blocked flush, sort-merge, grace hash, commutative encryption), which the
// adversary package demonstrates leaks against.
package core

import (
	"errors"
	"fmt"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// oTuple envelope: one flag byte followed by the fixed-size encoded join
// tuple (zeroes for decoys). All oTuples of a join have identical length
// (Fixed Size principle, §3.4.3).
const (
	flagDecoy byte = 0x00
	flagReal  byte = 0x01
)

// wrapReal builds a real oTuple around an encoded join row.
func wrapReal(payload []byte) []byte {
	out := make([]byte, 1+len(payload))
	out[0] = flagReal
	copy(out[1:], payload)
	return out
}

// wrapDecoy builds a decoy oTuple of the same size as a real one.
func wrapDecoy(payloadSize int) []byte {
	return make([]byte, 1+payloadSize) // flagDecoy is the zero byte
}

// IsReal reports whether a decrypted oTuple cell carries a real result.
func IsReal(cell []byte) bool { return len(cell) > 0 && cell[0] == flagReal }

// Payload returns the encoded join row of a real oTuple.
func Payload(cell []byte) []byte { return cell[1:] }

// oTupleFirst orders real oTuples before decoys, the priority used by every
// oblivious decoy sort ("giving lower priority to decoy tuples").
func oTupleFirst(a, b []byte) bool { return IsReal(a) && !IsReal(b) }

// Result is the outcome of a privacy preserving join.
type Result struct {
	// Output is the host region of sealed oTuple cells and the schema of
	// the join rows inside them.
	Output sim.Table
	// OutputLen is the number of oTuple cells produced. For the Chapter 4
	// algorithms this is N·|A| (a superset of the real result, §5.1.1); for
	// Algorithms 4-6 it equals the exact join size S.
	OutputLen int64
	// Stats are the coprocessor counters accumulated by this run.
	Stats sim.Stats
	// Blemished reports that Algorithm 6 hit a segment with more than M
	// results and performed the salvage pass (probability <= epsilon).
	Blemished bool
}

// DecodeOutput opens the output cells with the coprocessor's sealer and
// returns the real rows, dropping decoys — the recipient-side
// post-processing ("Decoys are decrypted and filtered out by the
// recipient", §4.3). The service layer performs the same job on behalf of
// the designated recipient P_C.
func DecodeOutput(t *sim.Coprocessor, res Result) (*relation.Relation, error) {
	out := relation.NewRelation(res.Output.Schema)
	for i := int64(0); i < res.OutputLen; i++ {
		ct := t.Host().Inspect(res.Output.Region, i)
		if ct == nil {
			return nil, fmt.Errorf("core: output cell %d missing", i)
		}
		cell, err := t.Sealer().Open(ct)
		if err != nil {
			return nil, fmt.Errorf("core: output cell %d: %w", i, err)
		}
		if !IsReal(cell) {
			continue
		}
		row, err := res.Output.Schema.Decode(Payload(cell))
		if err != nil {
			return nil, fmt.Errorf("core: output cell %d: %w", i, err)
		}
		if err := out.Append(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// errInvalid tags argument validation failures.
var errInvalid = errors.New("core: invalid argument")

// joinPayload encodes join(a, b) under the output schema.
func joinPayload(outSchema *relation.Schema, tuples ...relation.Tuple) ([]byte, error) {
	return outSchema.Encode(relation.JoinTuples(tuples...))
}

// outputSchema2 builds the Concat schema for a 2-way join.
func outputSchema2(a, b sim.Table) (*relation.Schema, error) {
	return relation.Concat(a.Schema, b.Schema)
}

// outputSchemaN builds the Concat schema for a J-way join.
func outputSchemaN(tables []sim.Table) (*relation.Schema, error) {
	schemas := make([]*relation.Schema, len(tables))
	for i, tab := range tables {
		schemas[i] = tab.Schema
	}
	return relation.Concat(schemas...)
}
