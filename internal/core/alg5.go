package core

import (
	"fmt"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// Join5 runs Algorithm 5 (§5.3.2), the J-way general join for secure
// coprocessors with larger memory M. T scans the L iTuples of D in a fixed
// order ⌈S/M⌉ times. During a scan it stores in its memory the join results
// whose index exceeds pindex (the index that produced the last result
// flushed in the previous scan), up to M of them, and flushes them only at
// the end of the scan — flushing mid-scan would reveal how many results lie
// in a prefix of D (§5.3.2), which is why the thesis's security proof
// prescribes scan-boundary flushes even though its pseudocode writes
// eagerly. The flush sizes are M, M, …, S−(⌈S/M⌉−1)M: a function of
// (L, S, M) alone, so the access pattern reveals nothing beyond the public
// sizes. The output holds exactly the S real results; no oblivious sort or
// random access is needed (§5.3.4: "ease of implementation").
func Join5(t *sim.Coprocessor, tables []sim.Table, pred relation.MultiPredicate) (Result, error) {
	outSchema, cart, err := prepCh5(t, tables)
	if err != nil {
		return Result{}, err
	}
	m := int64(t.Memory())
	release, err := t.Grant(t.Memory())
	if err != nil {
		return Result{}, fmt.Errorf("core: algorithm 5: %w", err)
	}
	defer release()
	t.ResetStats()

	host := t.Host()
	out := host.FreshRegion("alg5.out", 0)
	outPos, err := multiScan(t, cart, outSchema, pred, out, m)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Output:    sim.Table{Region: out, N: outPos, Schema: outSchema},
		OutputLen: outPos,
		Stats:     t.Stats(),
	}, nil
}

// multiScan is Algorithm 5's scan discipline: repeat fixed-order scans of
// D, storing up to m results whose index exceeds pindex (the index behind
// the last flushed result) and flushing only at scan boundaries, until the
// last flushed result is the globally last one. It returns the number of
// oTuples written to out. Algorithm 6's blemish salvage reuses it.
func multiScan(t *sim.Coprocessor, cart *sim.Cartesian, outSchema *relation.Schema,
	pred relation.MultiPredicate, out sim.RegionID, m int64) (int64, error) {
	l := cart.Size()
	pindex := int64(-1) // index of iTuple of previous (flushed) join
	lindex := int64(-1) // largest index of iTuple that leads to a join
	outPos := int64(0)
	for first := true; first || pindex < lindex; first = false {
		stored := make([][]byte, 0, m) // result buffer inside T (Granted)
		lastStored := pindex
		for i := int64(0); i < l; i++ {
			row, err := cart.Read(i)
			if err != nil {
				return 0, err
			}
			t.ChargePredicate()
			if !pred.Satisfy(row) {
				continue
			}
			if i > lindex {
				lindex = i
			}
			if i > pindex && int64(len(stored)) < m {
				payload, err := joinPayload(outSchema, row...)
				if err != nil {
					return 0, err
				}
				stored = append(stored, wrapReal(payload))
				lastStored = i
			}
		}
		// Flush at the scan boundary only.
		if err := t.PutRange(out, outPos, stored); err != nil {
			return 0, err
		}
		outPos += int64(len(stored))
		if len(stored) > 0 {
			if err := t.RequestDisk(out, outPos-int64(len(stored)), int64(len(stored))); err != nil {
				return 0, err
			}
		}
		pindex = lastStored
	}
	return outPos, nil
}

// Join5Transfers is the exact transfer count of this implementation, the
// measured analogue of Eqn 5.3: S + ⌈S/M⌉·L in logical reads; the
// underlying gets of a sequential scan add the cached-outer lower-order
// terms per scan.
func Join5Transfers(sizes []int64, s, m int64) int64 {
	l := int64(1)
	getsPerScan := int64(0)
	for _, n := range sizes {
		getsPerScan += l * n
		l *= n
	}
	scans := (s + m - 1) / m
	if scans < 1 {
		scans = 1
	}
	return scans*getsPerScan + s
}

// Join5Scans exposes the scan count ⌈S/M⌉ (minimum 1).
func Join5Scans(s, m int64) int64 {
	scans := (s + m - 1) / m
	if scans < 1 {
		scans = 1
	}
	return scans
}
