package core

import (
	"fmt"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// Join4 runs Algorithm 4 (§5.3.1), the J-way general join for secure
// coprocessors with small memory. T reads the L iTuples of
// D = X₁ × … × X_J in a fixed sequential order and writes exactly one
// oTuple per iTuple — the join result when satisfy() holds, a decoy
// otherwise. The L oTuples are then obliviously filtered (§5.2.2) so the
// output holds exactly the S real results, S being public under
// Definition 3. The communication pattern is a function of (L, S) alone.
//
// It needs only two tuples of device memory and does not benefit from more.
func Join4(t *sim.Coprocessor, tables []sim.Table, pred relation.MultiPredicate) (Result, error) {
	outSchema, cart, err := prepCh5(t, tables)
	if err != nil {
		return Result{}, err
	}
	t.ResetStats()

	host := t.Host()
	l := cart.Size()
	raw := host.FreshRegion("alg4.raw", int(l))
	payloadSize := outSchema.TupleSize()

	var s int64
	for i := int64(0); i < l; i++ {
		row, err := cart.Read(i)
		if err != nil {
			return Result{}, err
		}
		t.ChargePredicate()
		var cell []byte
		if pred.Satisfy(row) {
			payload, err := joinPayload(outSchema, row...)
			if err != nil {
				return Result{}, err
			}
			cell = wrapReal(payload)
			s++
		} else {
			cell = wrapDecoy(payloadSize)
		}
		if err := t.Put(raw, i, cell); err != nil {
			return Result{}, err
		}
	}

	out, err := filterDecoys(t, raw, l, s, "alg4.out")
	if err != nil {
		return Result{}, err
	}
	return Result{
		Output:    sim.Table{Region: out, N: s, Schema: outSchema},
		OutputLen: s,
		Stats:     t.Stats(),
	}, nil
}

// filterDecoys obliviously reduces omega oTuple cells to the s real results
// using the §5.2.2 repeated-buffer filter with the implementation-optimal
// swap size. With s = 0 it returns an empty region (the empty output is
// public); with omega == s no filtering is needed.
func filterDecoys(t *sim.Coprocessor, raw sim.RegionID, omega, s int64, name string) (sim.RegionID, error) {
	host := t.Host()
	if s == 0 {
		return host.FreshRegion(name, 0), nil
	}
	if omega == s {
		out := host.FreshRegion(name, int(s))
		if err := t.RequestCopyOut(out, 0, raw, 0, s); err != nil {
			return 0, err
		}
		return out, nil
	}
	delta := oblivious.ChooseDelta(omega, s)
	buf, err := oblivious.Filter(t, raw, omega, s, delta, IsReal, name+".buf")
	if err != nil {
		return 0, err
	}
	out := host.FreshRegion(name, int(s))
	if err := t.RequestCopyOut(out, 0, buf, 0, s); err != nil {
		return 0, err
	}
	return out, nil
}

// Join4Transfers is the exact transfer count of this implementation, the
// measured analogue of Eqn 5.2 (which counts reads of D logically; the
// underlying per-table gets add the lower-order cached-outer terms).
func Join4Transfers(sizes []int64, s int64) int64 {
	l := int64(1)
	gets := int64(0)
	for _, n := range sizes {
		gets += l * n // sequential scan with cached outer tuples
		l *= n
	}
	total := gets + l // reads + one put per iTuple
	if s > 0 && l > s {
		// The final copy of the kept cells is host-side and transfers nothing.
		total += oblivious.FilterTransfers(l, s, oblivious.ChooseDelta(l, s))
	}
	return total
}

// prepCh5 validates a Chapter 5 input and builds the output schema and the
// cartesian view.
func prepCh5(t *sim.Coprocessor, tables []sim.Table) (*relation.Schema, *sim.Cartesian, error) {
	if len(tables) == 0 {
		return nil, nil, fmt.Errorf("%w: no input tables", errInvalid)
	}
	outSchema, err := outputSchemaN(tables)
	if err != nil {
		return nil, nil, err
	}
	cart, err := sim.NewCartesian(t, tables)
	if err != nil {
		return nil, nil, err
	}
	return outSchema, cart, nil
}
