package core

import (
	"fmt"
	"testing"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// memCache is the test SortedCache: a plain map.
type memCache struct{ m map[string][][]byte }

func newMemCache() *memCache { return &memCache{m: make(map[string][][]byte)} }

func (c *memCache) Lookup(key string) ([][]byte, bool) {
	v, ok := c.m[key]
	return v, ok
}

func (c *memCache) Store(key string, cells [][]byte) { c.m[key] = cells }

// TestJoin7CachedMatchesReference runs the cached variant cold (empty
// cache) and warm (second run over the same inputs, fresh coprocessor)
// across the same case grid as Join7, checking the reference join and the
// exact closed-form transfer count in both phases — and that the warm run
// hits on every non-empty side.
func TestJoin7CachedMatchesReference(t *testing.T) {
	cases := []struct {
		name       string
		relA, relB *relation.Relation
	}{
		{"empty", relation.NewRelation(relation.KeyedSchema()), relation.NewRelation(relation.KeyedSchema())},
	}
	for _, n := range []int{1, 63, 64, 65} {
		s := n / 2
		if s == 0 {
			s = n
		}
		relA, relB := genJoinSized(uint64(300+n), n, n, s)
		cases = append(cases, struct {
			name       string
			relA, relB *relation.Relation
		}{fmt.Sprintf("n=%d", n), relA, relB})
	}
	skA, skB := genSkewed(6, 30, 30)
	cases = append(cases, struct {
		name       string
		relA, relB *relation.Relation
	}{"skew90", skA, skB})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cache := newMemCache()
			pred := keyEqui(t, tc.relA, tc.relB)
			want := relation.ReferenceJoin(tc.relA, tc.relB, pred)
			for _, ph := range []struct {
				phase   string
				wantHit bool
			}{{"cold", false}, {"warm", true}} {
				phase, wantHit := ph.phase, ph.wantHit
				env := newEnv(t, 8, uint64(len(phase)), tc.relA, tc.relB)
				res, use, err := Join7Cached(env.t, env.tabA, env.tabB, pred, cache, "k:A", "k:B")
				if err != nil {
					t.Fatalf("%s: %v", phase, err)
				}
				if res.OutputLen != int64(want.Len()) {
					t.Fatalf("%s: OutputLen = %d, want %d", phase, res.OutputLen, want.Len())
				}
				checkJoin(t, env, res, pred)
				nonEmpty := env.tabA.N > 0 // sides have equal emptiness in this grid
				if wantHit && nonEmpty && (!use.HitA || !use.HitB) {
					t.Fatalf("warm run missed: %+v", use)
				}
				if !wantHit && (use.HitA || use.HitB) {
					t.Fatalf("cold run hit: %+v", use)
				}
				wantTr := Join7CachedTransfers(env.tabA.N, env.tabB.N, res.OutputLen, use.HitA, use.HitB)
				if got := int64(res.Stats.Transfers()); got != wantTr {
					t.Fatalf("%s: transfers = %d, want closed form %d", phase, got, wantTr)
				}
			}
		})
	}
}

// TestJoin7CachedWarmCheaper pins the cache's whole point: the warm run
// costs exactly 2q + 4·Comparators(NextPow2(q)) fewer transfers per hit
// side than the cold run (the wrap, the span sort, and the readback are
// gone; the restore costs the same halfM puts the pads-plus-sorted cells
// cost cold).
func TestJoin7CachedWarmCheaper(t *testing.T) {
	relA, relB := genJoinSized(42, 24, 24, 10)
	pred := keyEqui(t, relA, relB)
	cache := newMemCache()
	run := func(seed uint64) (int64, CacheUse) {
		env := newEnv(t, 8, seed, relA, relB)
		res, use, err := Join7Cached(env.t, env.tabA, env.tabB, pred, cache, "A", "B")
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Stats.Transfers()), use
	}
	cold, useCold := run(1)
	warm, useWarm := run(2)
	if useCold.Hits() != 0 || useCold.Misses() != 2 {
		t.Fatalf("cold use = %+v", useCold)
	}
	if useWarm.Hits() != 2 || useWarm.Misses() != 0 {
		t.Fatalf("warm use = %+v", useWarm)
	}
	q := int64(24)
	perSide := 2*q + 4*oblivious.Comparators(oblivious.NextPow2(q))
	if cold-warm != 2*perSide {
		t.Fatalf("cold-warm = %d transfers, want 2·(2q + 4·Comparators) = %d", cold-warm, 2*perSide)
	}
}

// TestJoin7CachedAccessPatternInvariance extends the alg7 invariance pin to
// the cached variant: cold executions over inputs agreeing only on (|A|,
// |B|, S) charge identical stats, and warm executions (each against its own
// cache, filled by its own cold run) also charge identical stats — the
// closed form with both hit bits set. Contents influence which bytes are
// cached, never how many transfers move.
func TestJoin7CachedAccessPatternInvariance(t *testing.T) {
	const nA, nB, s = 12, 12, 8
	run := func(variant int, dataSeed, copSeed uint64, cache SortedCache) sim.Stats {
		t.Helper()
		relA, relB := alg7InvarianceInputs(variant, dataSeed)
		h := sim.NewHost(0)
		cop := newCop(t, h, 8, copSeed)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		res, _, err := Join7Cached(cop, tabs[0], tabs[1], keyEqui(t, relA, relB), cache, "A", "B")
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputLen != s {
			t.Fatalf("output length %d, want exact S=%d", res.OutputLen, s)
		}
		return res.Stats
	}
	c1, c2 := newMemCache(), newMemCache()
	cold1, cold2 := run(0, 1001, 7, c1), run(1, 2002, 8, c2)
	if cold1 != cold2 {
		t.Fatalf("cold cached schedule depends on tuple contents:\n run1 %+v\n run2 %+v", cold1, cold2)
	}
	if got, want := int64(cold1.Transfers()), Join7CachedTransfers(nA, nB, s, false, false); got != want {
		t.Fatalf("cold transfers = %d, want closed form %d", got, want)
	}
	warm1, warm2 := run(0, 1001, 9, c1), run(1, 2002, 10, c2)
	if warm1 != warm2 {
		t.Fatalf("warm cached schedule depends on tuple contents:\n run1 %+v\n run2 %+v", warm1, warm2)
	}
	if got, want := int64(warm1.Transfers()), Join7CachedTransfers(nA, nB, s, true, true); got != want {
		t.Fatalf("warm transfers = %d, want closed form %d", got, want)
	}
}

// TestParallelJoin7CachedCorrectness runs the parallel cached variant over
// duplicate-heavy inputs for several fleet sizes, cold then warm, checking
// the reference join both times and full hits on the warm pass.
func TestParallelJoin7CachedCorrectness(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			relA := relation.GenKeyed(relation.NewRand(uint64(p)+50), 21, 5)
			relB := relation.GenKeyed(relation.NewRand(uint64(p)^0xACE), 27, 5)
			pred := keyEqui(t, relA, relB)
			want := relation.ReferenceJoin(relA, relB, pred)
			cache := newMemCache()
			for _, phase := range []string{"cold", "warm"} {
				h := sim.NewHost(0)
				cops := newFleet(t, h, p, 8)
				tabs := loadTables(t, h, cops[0].Sealer(), relA, relB)
				res, use, err := ParallelJoin7Cached(cops, tabs[0], tabs[1], pred, cache, "A", "B")
				if err != nil {
					t.Fatalf("%s: %v", phase, err)
				}
				if phase == "warm" && use.Hits() != 2 {
					t.Fatalf("warm use = %+v", use)
				}
				got, err := DecodeOutput(cops[0], res)
				if err != nil {
					t.Fatal(err)
				}
				if !relation.SameMultiset(got, want) {
					t.Fatalf("p=%d %s mismatch: got %d rows, want %d", p, phase, got.Len(), want.Len())
				}
			}
		})
	}
}

// TestParallelJoin7CachedPerDeviceInvariance checks the parallel cached
// variant's per-device schedules are content-independent, cold and warm, at
// P = 2 and 4.
func TestParallelJoin7CachedPerDeviceInvariance(t *testing.T) {
	const s = 8
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			run := func(variant int, dataSeed uint64, cache SortedCache) []sim.Stats {
				t.Helper()
				relA, relB := alg7InvarianceInputs(variant, dataSeed)
				h := sim.NewHost(0)
				cops := newFleet(t, h, p, 8)
				tabs := loadTables(t, h, cops[0].Sealer(), relA, relB)
				res, _, err := ParallelJoin7Cached(cops, tabs[0], tabs[1], keyEqui(t, relA, relB), cache, "A", "B")
				if err != nil {
					t.Fatal(err)
				}
				if res.OutputLen != s {
					t.Fatalf("output length %d, want exact S=%d", res.OutputLen, s)
				}
				per := make([]sim.Stats, p)
				for i, c := range cops {
					per[i] = c.Stats()
				}
				return per
			}
			c1, c2 := newMemCache(), newMemCache()
			for _, phase := range []string{"cold", "warm"} {
				per1, per2 := run(0, 3003, c1), run(1, 4004, c2)
				for d := range per1 {
					if per1[d] != per2[d] {
						t.Fatalf("%s device %d schedule depends on tuple contents:\n run1 %+v\n run2 %+v",
							phase, d, per1[d], per2[d])
					}
				}
			}
		})
	}
}

// TestJoin7CachedWarmSkipsPreSortAt4096 is the acceptance benchmark
// scenario at scale: |A| = |B| = 2048 (union n = 4096). The warm
// re-execution must skip both per-side pre-sorts, with the transfer delta
// against the cold run asserted equal to the closed form — per side, the
// wrap (2q), the span sort's 4·Comparators(2048), and the cache readback
// (q) disappear; the halfM restore costs what the cold pads-plus-cells
// cost.
func TestJoin7CachedWarmSkipsPreSortAt4096(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4096 oblivious join in -short mode")
	}
	const nSide, s = 2048, 16
	relA, relB := genJoinSized(77, nSide, nSide, s)
	pred := keyEqui(t, relA, relB)
	cache := newMemCache()
	run := func(seed uint64) (Result, CacheUse) {
		env := newEnv(t, 8, seed, relA, relB)
		res, use, err := Join7Cached(env.t, env.tabA, env.tabB, pred, cache, "A", "B")
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputLen != s {
			t.Fatalf("output length %d, want %d", res.OutputLen, s)
		}
		checkJoin(t, env, res, pred)
		return res, use
	}
	cold, useCold := run(1)
	warm, useWarm := run(2)
	if useCold.Misses() != 2 || useWarm.Hits() != 2 {
		t.Fatalf("cache use: cold %+v, warm %+v", useCold, useWarm)
	}
	coldTr, warmTr := int64(cold.Stats.Transfers()), int64(warm.Stats.Transfers())
	if want := Join7CachedTransfers(nSide, nSide, s, false, false); coldTr != want {
		t.Fatalf("cold transfers = %d, want %d", coldTr, want)
	}
	if want := Join7CachedTransfers(nSide, nSide, s, true, true); warmTr != want {
		t.Fatalf("warm transfers = %d, want %d", warmTr, want)
	}
	perSide := 2*int64(nSide) + 4*oblivious.Comparators(int64(nSide))
	if coldTr-warmTr != 2*perSide {
		t.Fatalf("warm saved %d transfers, want exactly 2·(2q + 4·Comparators(q)) = %d",
			coldTr-warmTr, 2*perSide)
	}
}
