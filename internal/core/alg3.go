package core

import (
	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// Join3 runs Algorithm 3 (§4.5.2), the safe sort-based equijoin. B is first
// obliviously sorted on the join attribute, after which all B tuples joining
// a given a ∈ A occupy at most N consecutive positions. For each a, a
// scratch array of N decoys is written; then for the i-th B tuple, T reads
// scratch[i mod N] and writes back either the join result (on match) or a
// re-encryption of the value just read. Real results are never overwritten
// because they sit in at most N consecutive slots of the circular buffer.
//
// preSorted records that the data provider supplied B already sorted on the
// join attribute, skipping the oblivious sort (§4.5.2 cost discussion).
func Join3(t *sim.Coprocessor, a, b sim.Table, pred *relation.Equi, n int64, preSorted bool) (Result, error) {
	if err := validateCh4(a, b, n); err != nil {
		return Result{}, err
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	t.ResetStats()

	if !preSorted {
		less := func(x, y []byte) bool {
			tx, err := b.Schema.Decode(x)
			if err != nil {
				return false
			}
			ty, err := b.Schema.Decode(y)
			if err != nil {
				return false
			}
			return pred.Less(tx, ty)
		}
		if err := oblivious.Sort(t, b.Region, b.N, less); err != nil {
			return Result{}, err
		}
	}

	host := t.Host()
	scratch := host.FreshRegion("alg3.scratch", int(n))
	out := host.FreshRegion("alg3.out", int(n*a.N))
	payloadSize := outSchema.TupleSize()

	decoy := wrapDecoy(payloadSize)
	decoyFill := make([][]byte, n)
	for j := range decoyFill {
		decoyFill[j] = decoy
	}

	for ai := int64(0); ai < a.N; ai++ {
		aT, err := t.GetTuple(a, ai)
		if err != nil {
			return Result{}, err
		}
		if err := t.PutRange(scratch, 0, decoyFill); err != nil {
			return Result{}, err
		}
		i := int64(0)
		for bi := int64(0); bi < b.N; bi++ {
			bT, err := t.GetTuple(b, bi)
			if err != nil {
				return Result{}, err
			}
			prev, err := t.Get(scratch, i%n)
			if err != nil {
				return Result{}, err
			}
			t.ChargePredicate()
			if pred.Match(aT, bT) {
				payload, err := joinPayload(outSchema, aT, bT)
				if err != nil {
					return Result{}, err
				}
				if err := t.Put(scratch, i%n, wrapReal(payload)); err != nil {
					return Result{}, err
				}
			} else {
				// Write back the value just read; semantic security makes the
				// re-encryption indistinguishable from a fresh result.
				if err := t.Put(scratch, i%n, prev); err != nil {
					return Result{}, err
				}
			}
			i++
		}
		if err := t.RequestCopyOut(out, ai*n, scratch, 0, n); err != nil {
			return Result{}, err
		}
	}
	return Result{
		Output:    sim.Table{Region: out, N: n * a.N, Schema: outSchema},
		OutputLen: n * a.N,
		Stats:     t.Stats(),
	}, nil
}

// Join3Transfers is the exact transfer count of this implementation, the
// measured analogue of |A| + |A|N + |B|(log₂|B|)² + 3|A||B|.
func Join3Transfers(aN, bN, n int64, preSorted bool) int64 {
	total := aN * (1 + n + 3*bN)
	if !preSorted {
		total += oblivious.SortTransfers(bN)
	}
	return total
}
