package core

import (
	"encoding/binary"
	"sync"
	"testing"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// TestConcurrentFleetsOneHost is the -race stress test for the sharded host:
// two independent fleets hammer one shared host at the same time — four
// devices running a ParallelSort while four others run a ParallelJoin2.
// Results must be identical to the sequential runs, and every device's
// sim.Stats must equal the closed forms, proving that batching and
// concurrency changed wall-clock only, never the per-device access pattern.
func TestConcurrentFleetsOneHost(t *testing.T) {
	const (
		sortN              = int64(64) // power of two: no padding cells
		sortP              = 4
		aN, bN, matchBound = 8, 16, int64(4)
		joinP              = 4
		mem                = 8 // gamma=1, blk=4 for N=4
	)
	h := sim.NewHost(0)
	cops := newFleet(t, h, sortP+joinP, mem)
	sortCops, joinCops := cops[:sortP], cops[sortP:]

	// Sort input: a fixed permutation of 0..sortN-1 as 8-byte cells.
	sealer := sortCops[0].Sealer()
	sortRegion := h.MustCreateRegion("stress.sort", int(sortN))
	for i := int64(0); i < sortN; i++ {
		var cell [8]byte
		binary.BigEndian.PutUint64(cell[:], uint64((i*37)%sortN))
		h.Store(sortRegion, i, sealer.Seal(cell[:]))
	}
	less := func(a, b []byte) bool {
		return binary.BigEndian.Uint64(a) < binary.BigEndian.Uint64(b)
	}

	// Join input, shared with a sequential reference run on its own host.
	relA, relB := relation.GenWithMatchBound(relation.NewRand(12345), aN, bN, int(matchBound))
	tabA, err := sim.LoadTable(h, sealer, "stress.A", relA)
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := sim.LoadTable(h, sealer, "stress.B", relB)
	if err != nil {
		t.Fatal(err)
	}
	pred := keyEqui(t, relA, relB)

	var (
		wg      sync.WaitGroup
		sortErr error
		joinRes Result
		joinErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		sortErr = oblivious.ParallelSort(sortCops, sortRegion, sortN, less)
	}()
	go func() {
		defer wg.Done()
		joinRes, joinErr = ParallelJoin2(joinCops, tabA, tabB, pred, matchBound, 0)
	}()
	wg.Wait()
	if sortErr != nil {
		t.Fatalf("parallel sort: %v", sortErr)
	}
	if joinErr != nil {
		t.Fatalf("parallel join: %v", joinErr)
	}

	// Per-device closed forms, captured before any verification reads.
	sortStats := make([]sim.Stats, sortP)
	for w, c := range sortCops {
		sortStats[w] = c.Stats()
	}
	joinStats := make([]sim.Stats, joinP)
	for w, c := range joinCops {
		joinStats[w] = c.Stats()
	}
	for w, want := range expectedParallelSortStats(sortP, sortN) {
		if sortStats[w] != want {
			t.Errorf("sort device %d stats = %+v, want %+v", w, sortStats[w], want)
		}
	}
	for w := 0; w < joinP; w++ {
		lo := int64(w) * int64(aN) / joinP
		hi := int64(w+1) * int64(aN) / joinP
		rows := uint64(hi - lo)
		// gamma=1, blk=matchBound with this memory; per A row: 1 get for a,
		// |B| gets for the scan, blk puts and disk requests for the flush.
		want := sim.Stats{
			Gets:         rows * (1 + uint64(bN)),
			Puts:         rows * uint64(matchBound),
			PredEvals:    rows * uint64(bN),
			DiskRequests: rows * uint64(matchBound),
		}
		if joinStats[w] != want {
			t.Errorf("join device %d stats = %+v, want %+v", w, joinStats[w], want)
		}
	}

	// The sorted region must hold 0..sortN-1 in order.
	for i := int64(0); i < sortN; i++ {
		pt, err := sortCops[0].Get(sortRegion, i)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint64(pt); got != uint64(i) {
			t.Fatalf("sorted[%d] = %d", i, got)
		}
	}

	// The parallel join must decode to the same rows as the sequential run.
	got, err := DecodeOutput(joinCops[0], joinRes)
	if err != nil {
		t.Fatal(err)
	}
	seqHost := sim.NewHost(0)
	seqCop, err := sim.NewCoprocessor(seqHost, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqA, _ := sim.LoadTable(seqHost, seqCop.Sealer(), "A", relA)
	seqB, _ := sim.LoadTable(seqHost, seqCop.Sealer(), "B", relB)
	seqRes, err := Join2(seqCop, seqA, seqB, pred, matchBound, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeOutput(seqCop, seqRes)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.SameMultiset(got, want) {
		t.Fatalf("parallel join rows differ from sequential: %d vs %d", got.Len(), want.Len())
	}
	if ref := relation.ReferenceJoin(relA, relB, pred); !relation.SameMultiset(got, ref) {
		t.Fatalf("parallel join rows differ from reference: %d vs %d", got.Len(), ref.Len())
	}
}

// expectedParallelSortStats replays ParallelSort's comparator schedule for p
// devices over m (power-of-two, no padding) cells: every comparator costs 2
// gets, 2 puts and 1 comparison. Phase 1 gives each device one local bitonic
// sort of a block; phase 2 is the binary odd-even merge tree, each merge's
// stride sub-recursions splitting the device group in half and the closing
// comparator chain landing on the group's first device.
func expectedParallelSortStats(p int, m int64) []sim.Stats {
	block := m / int64(p)
	comps := make([]uint64, p)
	for w := range comps {
		comps[w] += uint64(oblivious.Comparators(block))
	}
	var seqMerge func(m2, r int64) uint64
	seqMerge = func(m2, r int64) uint64 {
		step := r * 2
		if step >= m2 {
			return 1
		}
		c := 2 * seqMerge(m2, step)
		for i := r; i+r < m2; i += step {
			c++
		}
		return c
	}
	var replay func(devs []int, m2, r int64)
	replay = func(devs []int, m2, r int64) {
		step := r * 2
		if len(devs) <= 1 || step >= m2 {
			comps[devs[0]] += seqMerge(m2, r)
			return
		}
		half := len(devs) / 2
		replay(devs[:half], m2, step)
		replay(devs[half:], m2, step)
		comps[devs[0]] += uint64(m2/step - 1)
	}
	for width := block; width < m; width <<= 1 {
		merges := m / (2 * width)
		devs := int64(p) / merges
		for w := int64(0); w < merges; w++ {
			group := make([]int, devs)
			for i := range group {
				group[i] = int(w*devs) + i
			}
			replay(group, 2*width, 1)
		}
	}
	stats := make([]sim.Stats, p)
	for w := range stats {
		stats[w] = sim.Stats{Gets: 2 * comps[w], Puts: 2 * comps[w], Comparisons: comps[w]}
	}
	return stats
}
