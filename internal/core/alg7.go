package core

import (
	"encoding/binary"
	"fmt"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// Join7 runs Algorithm 7, the sort-based oblivious equijoin after
// Krastnikov et al. ("Efficient Oblivious Database Joins", PAPERS.md),
// adapted to the coprocessor model: instead of scanning |A|·|B| pairs or
// N·|A| scratch slots, it sorts the union of both relations once, derives
// per-key multiplicities with three oblivious index scans, and expands each
// side to the exact output size S with the oblivious distribution network
// and a fill-forward duplication scan. Everything is built from the batched
// transfer primitives, so the whole join costs O((n log²n + S log²S))
// transfers for n = |A| + |B| — the sorting networks dominate; the
// expansion itself is O(S log S) — versus Algorithm 5's ⌈S/M⌉·L.
//
// The pipeline (all arrays hold uniform fixed-size cells: a tag byte, four
// u64 index fields, and the padded tuple encoding):
//
//  1. Union build: copy A and B into one working array W, tagged per side.
//  2. Oblivious sort of W by (join key, tag), grouping equal keys with the
//     A rows first.
//  3. Three index scans (forward, backward, forward) that give every row
//     its in-group occurrence number, its group's multiplicities (c_A,
//     c_B), and its group's first output slot g = Σ c_A·c_B over preceding
//     groups; the third scan also yields S inside T.
//  4. Per side: rewrite rows into (destination, keep) form — an A row with
//     occurrence i takes destination g + i·c_B; a B row with occurrence j
//     takes g + j·c_A — compact the kept rows by an oblivious sort on
//     destination, route them with the distribution network, and duplicate
//     them across their group's slots with the fill-forward scan. The B
//     side fills in B-major order, so each filled copy computes its final
//     slot g + i·c_B + j and one more oblivious sort aligns it with A.
//  5. Stitch: one paired scan emits oTuple join rows; the output is exactly
//     S cells, the Chapter 5 output contract.
//
// Every phase's access schedule is a pure function of (|A|, |B|, S): the
// sorts and the distribution network are fixed networks, the scans touch
// every cell exactly once, and data-dependent decisions (swap or not, keep
// or not) happen inside T behind outcome-independent transfer pairs. S is
// public under the exact-output contract (Definition 3), exactly as in
// Algorithm 5, so scheduling on it reveals nothing new. The duplicate
// multiplicities — where a naive implementation leaks — only ever influence
// cell contents, never which cell is touched.
//
// T's resident state is a handful of cells (the scan accumulators and the
// fill-forward hold slot), so unlike Algorithms 1-6 the memory parameter M
// never appears in the cost.
func Join7(t *sim.Coprocessor, a, b sim.Table, pred *relation.Equi) (Result, error) {
	if a.N < 0 || b.N < 0 {
		return Result{}, fmt.Errorf("%w: negative relation size", errInvalid)
	}
	if pred == nil {
		return Result{}, fmt.Errorf("%w: alg7 needs an equality predicate", errInvalid)
	}
	if !pred.Orderable() {
		return Result{}, fmt.Errorf("%w: alg7 needs an orderable join attribute", errInvalid)
	}
	outSchema, err := outputSchema2(a, b)
	if err != nil {
		return Result{}, err
	}
	t.ResetStats()
	release, err := t.Grant(a7Memory)
	if err != nil {
		return Result{}, err
	}
	defer release()

	host := t.Host()
	codec := newA7Codec(pred, a.Schema, b.Schema)
	n := a.N + b.N

	if n == 0 {
		out := host.FreshRegion("alg7.out", 0)
		return Result{Output: sim.Table{Region: out, N: 0, Schema: outSchema}, Stats: t.Stats()}, nil
	}

	// Phase 1+2: union build and sort by (key, tag).
	w := host.FreshRegion("alg7.w", int(oblivious.NextPow2(n)))
	if err := t.TransformRange(w, 0, a.Region, 0, a.N, func(_ int64, pt []byte) ([]byte, error) {
		return codec.wrap(a7TagA, pt), nil
	}); err != nil {
		return Result{}, err
	}
	if err := t.TransformRange(w, a.N, b.Region, 0, b.N, func(_ int64, pt []byte) ([]byte, error) {
		return codec.wrap(a7TagB, pt), nil
	}); err != nil {
		return Result{}, err
	}
	if err := oblivious.Sort(t, w, n, codec.lessKeyTag); err != nil {
		return Result{}, err
	}

	// Phases 3–5: index scans, per-side expansion, alignment, stitch.
	sort := func(region sim.RegionID, n int64, less oblivious.LessFunc) error {
		return oblivious.Sort(t, region, n, less)
	}
	out, s, err := join7Tail(t, codec, sort, w, n, outSchema, "alg7.out")
	if err != nil {
		return Result{}, err
	}
	return Result{Output: out, OutputLen: s, Stats: t.Stats()}, nil
}

// join7Tail runs phases 3–5 of Algorithm 7 over a key-sorted union held in
// the first n cells of w: the three index scans, both side expansions, the
// B alignment sort, and the stitch. Shared by Join7 and Join7Cached — the
// tail's schedule is identical however the sorted union was produced, a
// pure function of (n, S).
func join7Tail(t *sim.Coprocessor, codec *a7Codec, sort a7SortFunc, w sim.RegionID, n int64, outSchema *relation.Schema, outName string) (sim.Table, int64, error) {
	s, err := codec.indexScans(t, w, n)
	if err != nil {
		return sim.Table{}, 0, err
	}
	out := t.Host().FreshRegion(outName, int(s))
	if s == 0 {
		return sim.Table{Region: out, N: 0, Schema: outSchema}, 0, nil
	}
	ea, err := codec.expandSide(t, sort, w, n, s, a7TagA)
	if err != nil {
		return sim.Table{}, 0, err
	}
	eb, err := codec.expandSide(t, sort, w, n, s, a7TagB)
	if err != nil {
		return sim.Table{}, 0, err
	}
	if err := sort(eb, s, codec.lessDest); err != nil {
		return sim.Table{}, 0, err
	}
	if err := codec.stitch(t, out, ea, eb, s, outSchema); err != nil {
		return sim.Table{}, 0, err
	}
	return sim.Table{Region: out, N: s, Schema: outSchema}, s, nil
}

// Join7Transfers is the exact transfer count of this implementation:
//
//	2n + Sort(n) + 6n                          union build, key sort, scans
//	+ 2·[2n + Sort(n) + 2t + (m−t) + Dist(m) + 2S]   per-side expansion
//	+ Sort(S) + 3S                             B alignment and stitch
//
// with n = |A|+|B|, t = min(n, S), m = NextPow2(S), Sort the bitonic
// network cost and Dist the distribution network cost. The n log²n and
// S log²S sort terms dominate; compare Join5Transfers' ⌈S/M⌉·L.
func Join7Transfers(aN, bN, s int64) int64 {
	n := aN + bN
	if n == 0 {
		return 0
	}
	total := 2*n + oblivious.SortTransfers(n) + 6*n
	if s == 0 {
		return total
	}
	m := oblivious.NextPow2(s)
	tx := min64(n, s)
	side := 2*n + oblivious.SortTransfers(n) + 2*tx + (m - tx) +
		oblivious.DistributeTransfers(m) + 2*s
	return total + 2*side + oblivious.SortTransfers(s) + 3*s
}

// --- Algorithm 7 working cells ---

// A working cell is tag || f0 || f1 || f2 || f3 || payload with u64 fields
// and the tuple encoding padded to the larger of the two schemas, so every
// cell of every intermediate array has identical length (Fixed Size
// principle, §3.4.3). The fields are reused phase by phase:
//
//	after the index scans   f0 = in-group occurrence, f1 = c_A (B rows),
//	                        f2 = c_B, f3 = group output base g
//	after the side rewrite  f0 = destination slot, f1/f2/f3 = c_A/c_B/g
//	after the B fill        f0 = final aligned slot g + i·c_B + j
const (
	a7TagA byte = 0x00 // cell carries an A tuple
	a7TagB byte = 0x01 // cell carries a B tuple
	a7TagE byte = 0xFF // empty filler cell (discarded by keep logic)

	a7Hdr = 1 + 4*8

	// a7Memory is the resident state the algorithm Grants: the fill-forward
	// hold slot. The scan accumulators (previous key, group counters) ride
	// in the same slot's budget; like the sort networks' two-cell staging,
	// nothing else outlives a batch. One cell, independent of every size —
	// Algorithm 7 runs at any device memory M ≥ 1.
	a7Memory = 1
)

func a7F(c []byte, k int) int64       { return int64(binary.BigEndian.Uint64(c[1+8*k:])) }
func a7SetF(c []byte, k int, v int64) { binary.BigEndian.PutUint64(c[1+8*k:], uint64(v)) }

// a7Codec builds, parses and orders working cells for one join.
type a7Codec struct {
	pred    *relation.Equi
	sa, sb  *relation.Schema
	payload int
	cell    int
	fillBuf []byte // reused scratch for fill-forward rewrites
}

func newA7Codec(pred *relation.Equi, sa, sb *relation.Schema) *a7Codec {
	payload := sa.TupleSize()
	if sb.TupleSize() > payload {
		payload = sb.TupleSize()
	}
	return &a7Codec{pred: pred, sa: sa, sb: sb, payload: payload, cell: a7Hdr + payload}
}

// wrap builds a working cell around a side's encoded tuple.
func (c *a7Codec) wrap(tag byte, enc []byte) []byte {
	out := make([]byte, c.cell)
	out[0] = tag
	copy(out[a7Hdr:], enc)
	return out
}

// empty builds a filler cell of the same size as a real one.
func (c *a7Codec) empty() []byte {
	out := make([]byte, c.cell)
	out[0] = a7TagE
	return out
}

// tuple decodes the tuple a real working cell carries.
func (c *a7Codec) tuple(cell []byte) (relation.Tuple, error) {
	switch cell[0] {
	case a7TagA:
		return c.sa.Decode(cell[a7Hdr : a7Hdr+c.sa.TupleSize()])
	case a7TagB:
		return c.sb.Decode(cell[a7Hdr : a7Hdr+c.sb.TupleSize()])
	default:
		return nil, fmt.Errorf("core: alg7 cell has no tuple (tag %#x)", cell[0])
	}
}

// key extracts the join-attribute value of a real working cell.
func (c *a7Codec) key(cell []byte) (relation.Value, error) {
	tup, err := c.tuple(cell)
	if err != nil {
		return relation.Value{}, err
	}
	if cell[0] == a7TagA {
		return c.pred.KeyA(tup), nil
	}
	return c.pred.KeyB(tup), nil
}

// cloneKey copies a key value out of a transient cell buffer so it can be
// held across scan steps.
func cloneKey(v relation.Value) relation.Value {
	if v.B != nil {
		v.B = append([]byte(nil), v.B...)
	}
	return v
}

// lessKeyTag orders working cells by (join key, tag): equal keys group
// together with the A rows first. Undecodable cells sort last, like decoys.
func (c *a7Codec) lessKeyTag(x, y []byte) bool {
	kx, errX := c.key(x)
	ky, errY := c.key(y)
	if errX != nil || errY != nil {
		return errX == nil
	}
	if cmp := c.pred.CompareKeys(kx, ky); cmp != 0 {
		return cmp < 0
	}
	return x[0] < y[0]
}

// lessDest orders real cells by destination slot, empties last.
func (c *a7Codec) lessDest(x, y []byte) bool {
	xe, ye := x[0] == a7TagE, y[0] == a7TagE
	if xe || ye {
		return !xe && ye
	}
	return a7F(x, 0) < a7F(y, 0)
}

// indexScans runs the three multiplicity scans over the key-sorted union
// and returns the exact join size S. Scan one (forward) numbers every row
// within its (key, side) group and gives B rows their group's c_A (all A
// rows of a group precede its B rows). Scan two (backward) gives every row
// its group's c_B. Scan three (forward) gives every row its group's first
// output slot g and accumulates S = Σ c_A·c_B. Each scan reads and rewrites
// every cell exactly once; the group state lives inside T.
func (c *a7Codec) indexScans(t *sim.Coprocessor, w sim.RegionID, n int64) (int64, error) {
	var (
		have bool
		prev relation.Value
		cntA int64
		cntB int64
	)
	step := func(cell []byte) (newGroup bool, err error) {
		key, err := c.key(cell)
		if err != nil {
			return false, err
		}
		t.ChargeCompare()
		newGroup = !have || c.pred.CompareKeys(prev, key) != 0
		prev, have = cloneKey(key), true
		return newGroup, nil
	}

	if err := t.TransformRange(w, 0, w, 0, n, func(_ int64, pt []byte) ([]byte, error) {
		newGroup, err := step(pt)
		if err != nil {
			return nil, err
		}
		if newGroup {
			cntA, cntB = 0, 0
		}
		if pt[0] == a7TagA {
			a7SetF(pt, 0, cntA)
			cntA++
		} else {
			a7SetF(pt, 0, cntB)
			a7SetF(pt, 1, cntA)
			cntB++
		}
		return pt, nil
	}); err != nil {
		return 0, err
	}

	have = false
	var groupCB int64
	if err := a7ScanBackward(t, w, n, func(_ int64, pt []byte) ([]byte, error) {
		newGroup, err := step(pt)
		if err != nil {
			return nil, err
		}
		if newGroup {
			groupCB = 0
			if pt[0] == a7TagB {
				groupCB = a7F(pt, 0) + 1 // the last B row carries j = c_B − 1
			}
		}
		a7SetF(pt, 2, groupCB)
		return pt, nil
	}); err != nil {
		return 0, err
	}

	have = false
	var base, groupCA, groupSize int64
	if err := t.TransformRange(w, 0, w, 0, n, func(_ int64, pt []byte) ([]byte, error) {
		newGroup, err := step(pt)
		if err != nil {
			return nil, err
		}
		if newGroup {
			base += groupCA * groupSize
			groupCA, groupSize = 0, a7F(pt, 2)
		}
		if pt[0] == a7TagA {
			groupCA++
		}
		a7SetF(pt, 3, base)
		return pt, nil
	}); err != nil {
		return 0, err
	}
	return base + groupCA*groupSize, nil
}

// a7SortFunc abstracts the oblivious sort a pipeline stage uses, so the
// serial path plugs in oblivious.Sort on one device and the parallel path
// plugs in oblivious.ParallelSort over a device group.
type a7SortFunc func(region sim.RegionID, n int64, less oblivious.LessFunc) error

// expandSide extracts one side of the indexed union and expands it to the
// S output slots: rewrite into (destination, keep) form, compact the kept
// rows by an oblivious sort on destination, route them with the
// distribution network, and duplicate them with the fill-forward scan.
// Returns the region whose first S cells hold the side's expanded rows.
func (c *a7Codec) expandSide(t *sim.Coprocessor, sort a7SortFunc, w sim.RegionID, n, s int64, tag byte) (sim.RegionID, error) {
	host := t.Host()
	m := oblivious.NextPow2(s)
	name := "alg7.ea"
	if tag == a7TagB {
		name = "alg7.eb"
	}

	// Rewrite: keep exactly the rows of this side whose group joins at all;
	// an A row with occurrence i goes to slot g + i·c_B, a B row with
	// occurrence j to slot g + j·c_A (B-major, realigned after the fill).
	// Dropped rows become fillers; the keep decision stays inside T.
	sx := host.FreshRegion(name+".c", int(oblivious.NextPow2(n)))
	if err := t.TransformRange(sx, 0, w, 0, n, func(_ int64, pt []byte) ([]byte, error) {
		t.ChargeCompare()
		keep, dest := false, int64(0)
		if pt[0] == tag {
			if tag == a7TagA {
				cb := a7F(pt, 2)
				keep, dest = cb > 0, a7F(pt, 3)+a7F(pt, 0)*cb
			} else {
				ca := a7F(pt, 1)
				keep, dest = ca > 0, a7F(pt, 3)+a7F(pt, 0)*ca
			}
		}
		if !keep {
			return c.empty(), nil
		}
		a7SetF(pt, 0, dest)
		return pt, nil
	}); err != nil {
		return 0, err
	}

	// Compact: kept destinations strictly increase in union order, so an
	// oblivious sort on (real, destination) moves the kept rows to a
	// rank-preserving prefix — the distribution network's precondition.
	if err := sort(sx, n, c.lessDest); err != nil {
		return 0, err
	}

	// Expand into the output-sized array: copy the compacted prefix (at
	// most min(n, S) kept rows), pad with fillers, route, duplicate.
	ex := host.FreshRegion(name, int(m))
	tx := min64(n, s)
	if err := t.TransformRange(ex, 0, sx, 0, tx, func(_ int64, pt []byte) ([]byte, error) {
		return pt, nil
	}); err != nil {
		return 0, err
	}
	if tx < m {
		pads := make([][]byte, m-tx)
		filler := c.empty()
		for i := range pads {
			pads[i] = filler
		}
		if err := t.PutRange(ex, tx, pads); err != nil {
			return 0, err
		}
	}
	if err := oblivious.Distribute(t, ex, m, func(pt []byte) (bool, int64) {
		return pt[0] != a7TagE, a7F(pt, 0)
	}); err != nil {
		return 0, err
	}

	isReal := func(pt []byte) bool { return pt[0] != a7TagE }
	var fill func(k int64, pt, held []byte) ([]byte, error)
	if tag == a7TagA {
		// A fills in final order already: every slot of the group's i-th
		// stripe takes a copy of A's i-th row.
		fill = func(_ int64, _, held []byte) ([]byte, error) { return held, nil }
	} else {
		// B fills in B-major order: the cell at slot k is copy number
		// i = k − g − j·c_A of B row j, destined for final slot g + i·c_B + j.
		fill = func(k int64, _, held []byte) ([]byte, error) {
			g, ca, cb := a7F(held, 3), a7F(held, 1), a7F(held, 2)
			j := (a7F(held, 0) - g) / ca
			i := k - g - j*ca
			c.fillBuf = append(c.fillBuf[:0], held...)
			a7SetF(c.fillBuf, 0, g+i*cb+j)
			return c.fillBuf, nil
		}
	}
	if err := oblivious.FillForward(t, ex, s, isReal, fill); err != nil {
		return 0, err
	}
	return ex, nil
}

// stitch pairs the aligned expansions into oTuple join rows: slot k of the
// output is the real join row (A_k ⋈ B_k). All S cells are real — the exact
// output contract of the Chapter 5 algorithms.
func (c *a7Codec) stitch(t *sim.Coprocessor, out sim.RegionID, ea, eb sim.RegionID, s int64, outSchema *relation.Schema) error {
	for off := int64(0); off < s; off += sim.TransferBatch {
		chunk := min64(sim.TransferBatch, s-off)
		ptsA, err := t.GetRange(ea, off, chunk)
		if err != nil {
			return err
		}
		ptsB, err := t.GetRange(eb, off, chunk)
		if err != nil {
			return err
		}
		rows := make([][]byte, chunk)
		for k := int64(0); k < chunk; k++ {
			ta, err := c.tuple(ptsA[k])
			if err != nil {
				return fmt.Errorf("core: alg7 slot %d: %w", off+k, err)
			}
			tb, err := c.tuple(ptsB[k])
			if err != nil {
				return fmt.Errorf("core: alg7 slot %d: %w", off+k, err)
			}
			payload, err := joinPayload(outSchema, ta, tb)
			if err != nil {
				return err
			}
			rows[k] = wrapReal(payload)
		}
		if err := t.PutRange(out, off, rows); err != nil {
			return err
		}
	}
	return nil
}

// a7ScanBackward is the descending counterpart of an in-place
// TransformRange: it reads and rewrites cells n−1 … 0 in TransferBatch
// windows (one batched get and one batched put per window), so the access
// schedule depends only on n. fn may mutate pt and return it.
func a7ScanBackward(t *sim.Coprocessor, region sim.RegionID, n int64, fn func(idx int64, pt []byte) ([]byte, error)) error {
	idx := make([]int64, 0, sim.TransferBatch)
	var pts [][]byte
	outs := make([][]byte, 0, sim.TransferBatch)
	for hi := n; hi > 0; {
		lo := hi - sim.TransferBatch
		if lo < 0 {
			lo = 0
		}
		idx = idx[:0]
		for i := hi - 1; i >= lo; i-- {
			idx = append(idx, i)
		}
		var err error
		pts, err = t.GetBatchInto(pts, region, idx)
		if err != nil {
			return err
		}
		outs = outs[:0]
		for k, i := range idx {
			out, err := fn(i, pts[k])
			if err != nil {
				return err
			}
			outs = append(outs, out)
		}
		if err := t.PutBatch(region, idx, outs); err != nil {
			return err
		}
		hi = lo
	}
	return nil
}
