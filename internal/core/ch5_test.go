package core

import (
	"errors"
	"fmt"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/sim"
)

// loadTables loads several relations onto one host.
func loadTables(t *testing.T, h *sim.Host, sealer sim.Sealer, rels ...*relation.Relation) []sim.Table {
	t.Helper()
	out := make([]sim.Table, len(rels))
	for i, r := range rels {
		tab, err := sim.LoadTable(h, sealer, fmt.Sprintf("X%d", i+1), r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tab
	}
	return out
}

func newCop(t *testing.T, h *sim.Host, mem int, seed uint64) *sim.Coprocessor {
	t.Helper()
	cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return cop
}

func checkMultiJoin(t *testing.T, cop *sim.Coprocessor, res Result, rels []*relation.Relation, pred relation.MultiPredicate) {
	t.Helper()
	got, err := DecodeOutput(cop, res)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := relation.ReferenceMultiJoin(rels, pred)
	if !relation.SameMultiset(got, want) {
		t.Fatalf("join mismatch: got %d rows, want %d", got.Len(), want.Len())
	}
	// Chapter 5 outputs are exact: no decoys and no padding.
	if res.OutputLen != int64(want.Len()) {
		t.Fatalf("output length %d, want exact S=%d", res.OutputLen, want.Len())
	}
}

type runCh5 func(cop *sim.Coprocessor, tabs []sim.Table, pred relation.MultiPredicate) (Result, error)

var ch5Algorithms = map[string]runCh5{
	"alg4": Join4,
	"alg5": Join5,
	"alg6": func(cop *sim.Coprocessor, tabs []sim.Table, pred relation.MultiPredicate) (Result, error) {
		rep, err := Join6(cop, tabs, pred, 1e-9)
		return rep.Result, err
	},
}

func TestCh5CorrectnessTwoWay(t *testing.T) {
	shapes := []struct{ nA, nB, s, m int }{
		{6, 8, 5, 2},   // S > M: multi-scan / segmented paths
		{6, 8, 5, 64},  // S <= M: single pass
		{5, 9, 0, 4},   // empty result
		{4, 4, 4, 1},   // M = 1
		{7, 11, 11, 3}, // many scans
	}
	for name, run := range ch5Algorithms {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%s_%dx%d_S%d_M%d", name, sh.nA, sh.nB, sh.s, sh.m), func(t *testing.T) {
				relA, relB := genJoinSized(uint64(sh.nA+sh.s), sh.nA, sh.nB, sh.s)
				h := sim.NewHost(0)
				cop := newCop(t, h, sh.m, 21)
				tabs := loadTables(t, h, cop.Sealer(), relA, relB)
				pred := relation.Pairwise(keyEqui(t, relA, relB))
				res, err := run(cop, tabs, pred)
				if err != nil {
					t.Fatal(err)
				}
				checkMultiJoin(t, cop, res, []*relation.Relation{relA, relB}, pred)
			})
		}
	}
}

func TestCh5CorrectnessThreeWay(t *testing.T) {
	mk := func(seed uint64, n int) *relation.Relation {
		return relation.GenKeyed(relation.NewRand(seed), n, 4)
	}
	rels := []*relation.Relation{mk(1, 4), mk(2, 5), mk(3, 3)}
	pred := relation.MultiPredicateFunc{
		Fn: func(ts []relation.Tuple) bool {
			return ts[0][0].I == ts[1][0].I && ts[1][0].I == ts[2][0].I
		},
		Desc: "x1.key = x2.key = x3.key",
	}
	for name, run := range ch5Algorithms {
		t.Run(name, func(t *testing.T) {
			h := sim.NewHost(0)
			cop := newCop(t, h, 3, 31)
			tabs := loadTables(t, h, cop.Sealer(), rels...)
			res, err := run(cop, tabs, pred)
			if err != nil {
				t.Fatal(err)
			}
			checkMultiJoin(t, cop, res, rels, pred)
		})
	}
}

func TestCh5CorrectnessWithOCB(t *testing.T) {
	relA, relB := genJoinSized(9, 5, 7, 4)
	for name, run := range ch5Algorithms {
		t.Run(name, func(t *testing.T) {
			h := sim.NewHost(0)
			sealer, err := sim.NewRandomOCBSealer()
			if err != nil {
				t.Fatal(err)
			}
			cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 2, Sealer: sealer, Seed: 13})
			if err != nil {
				t.Fatal(err)
			}
			tabs := loadTables(t, h, sealer, relA, relB)
			pred := relation.Pairwise(keyEqui(t, relA, relB))
			res, err := run(cop, tabs, pred)
			if err != nil {
				t.Fatal(err)
			}
			checkMultiJoin(t, cop, res, []*relation.Relation{relA, relB}, pred)
		})
	}
}

func TestCh5PrivacyTraceIdentical(t *testing.T) {
	// Definition 3: inputs agreeing on (|X₁|, |X₂|, S) — and the device seed
	// — must induce identical access sequences.
	const nA, nB, s, m = 6, 10, 7, 3
	for name, run := range ch5Algorithms {
		t.Run(name, func(t *testing.T) {
			digest := func(seed uint64) (uint64, uint64) {
				relA, relB := genJoinSized(seed, nA, nB, s)
				h := sim.NewHost(0)
				cop := newCop(t, h, m, 77)
				tabs := loadTables(t, h, cop.Sealer(), relA, relB)
				pred := relation.Pairwise(keyEqui(t, relA, relB))
				if _, err := run(cop, tabs, pred); err != nil {
					t.Fatal(err)
				}
				return h.Trace().Digest(), h.Trace().Count()
			}
			d1, c1 := digest(101)
			d2, c2 := digest(202)
			if d1 != d2 || c1 != c2 {
				t.Fatalf("%s: access pattern depends on relation contents", name)
			}
		})
	}
}

func TestJoin5TransfersExact(t *testing.T) {
	for _, sh := range []struct{ nA, nB, s, m int }{
		{6, 8, 5, 2}, {5, 9, 0, 4}, {7, 11, 11, 3}, {4, 4, 4, 64},
	} {
		relA, relB := genJoinSized(uint64(sh.nA), sh.nA, sh.nB, sh.s)
		h := sim.NewHost(0)
		cop := newCop(t, h, sh.m, 3)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		pred := relation.Pairwise(keyEqui(t, relA, relB))
		res, err := Join5(cop, tabs, pred)
		if err != nil {
			t.Fatal(err)
		}
		want := Join5Transfers([]int64{int64(sh.nA), int64(sh.nB)}, int64(sh.s), int64(sh.m))
		if got := int64(res.Stats.Transfers()); got != want {
			t.Errorf("%+v: transfers %d, want %d", sh, got, want)
		}
	}
}

func TestJoin4TransfersExact(t *testing.T) {
	for _, sh := range []struct{ nA, nB, s int }{
		{6, 8, 5}, {5, 9, 0}, {4, 16, 16},
	} {
		relA, relB := genJoinSized(uint64(sh.nA*7), sh.nA, sh.nB, sh.s)
		h := sim.NewHost(0)
		cop := newCop(t, h, 2, 3)
		tabs := loadTables(t, h, cop.Sealer(), relA, relB)
		pred := relation.Pairwise(keyEqui(t, relA, relB))
		res, err := Join4(cop, tabs, pred)
		if err != nil {
			t.Fatal(err)
		}
		want := Join4Transfers([]int64{int64(sh.nA), int64(sh.nB)}, int64(sh.s))
		if got := int64(res.Stats.Transfers()); got != want {
			t.Errorf("%+v: transfers %d, want %d", sh, got, want)
		}
	}
}

func TestJoin6TransfersBounded(t *testing.T) {
	// Random-order reads make the exact get count permutation-dependent;
	// Join6Transfers is an upper bound that assumes no coordinate reuse.
	sh := struct{ nA, nB, s, m int }{8, 16, 12, 2}
	relA, relB := genJoinSized(11, sh.nA, sh.nB, sh.s)
	h := sim.NewHost(0)
	cop := newCop(t, h, sh.m, 5)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	rep, err := Join6(cop, tabs, pred, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blemished {
		t.Skip("blemished run; transfer bound applies to the clean path")
	}
	bound := Join6Transfers([]int64{int64(sh.nA), int64(sh.nB)}, int64(sh.s), int64(sh.m), 0.3)
	got := int64(rep.Stats.Transfers())
	if got > bound {
		t.Fatalf("transfers %d exceed bound %d", got, bound)
	}
	l := int64(sh.nA * sh.nB)
	if got < bound-2*l {
		t.Fatalf("transfers %d implausibly far below bound %d", got, bound)
	}
}

func TestJoin6LargeMemorySinglePass(t *testing.T) {
	// M >= S: cost collapses to L + S (§5.3.3), a single screening pass.
	relA, relB := genJoinSized(13, 6, 6, 5)
	h := sim.NewHost(0)
	cop := newCop(t, h, 64, 5)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	rep, err := Join6(cop, tabs, pred, 1e-20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 1 || rep.S != 5 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Stats.LogicalReads != 36 {
		t.Fatalf("logical reads %d, want L=36", rep.Stats.LogicalReads)
	}
	if rep.Stats.Puts != 5 {
		t.Fatalf("puts %d, want S=5", rep.Stats.Puts)
	}
}

func TestJoin6BlemishSalvage(t *testing.T) {
	// eps=1 accepts any segment size, so n*=L and a single segment holds all
	// S > M results: a guaranteed blemish exercising the salvage path.
	relA, relB := genJoinSized(17, 6, 9, 8)
	h := sim.NewHost(0)
	cop := newCop(t, h, 2, 5)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	rep, err := Join6(cop, tabs, pred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Blemished {
		t.Fatal("expected a blemished run")
	}
	checkMultiJoin(t, cop, rep.Result, []*relation.Relation{relA, relB}, pred)
}

func TestJoin6ReportFields(t *testing.T) {
	relA, relB := genJoinSized(19, 6, 10, 7)
	h := sim.NewHost(0)
	cop := newCop(t, h, 3, 5)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	rep, err := Join6(cop, tabs, pred, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.S != 7 {
		t.Fatalf("S = %d, want 7", rep.S)
	}
	if rep.NStar < 3 { // n* >= M always
		t.Fatalf("NStar = %d", rep.NStar)
	}
	if rep.Segments != (60+rep.NStar-1)/rep.NStar {
		t.Fatalf("Segments = %d with NStar = %d", rep.Segments, rep.NStar)
	}
}

func TestJoin6Validation(t *testing.T) {
	relA, relB := genJoinSized(23, 3, 3, 2)
	h := sim.NewHost(0)
	cop := newCop(t, h, 2, 5)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	if _, err := Join6(cop, tabs, pred, -0.1); !errors.Is(err, errInvalid) {
		t.Error("negative epsilon accepted")
	}
	if _, err := Join6(cop, tabs, pred, 1.5); !errors.Is(err, errInvalid) {
		t.Error("epsilon > 1 accepted")
	}
	if _, err := Join4(cop, nil, pred); !errors.Is(err, errInvalid) {
		t.Error("no tables accepted")
	}
}

func TestCh5FixedTimePredicateCharges(t *testing.T) {
	// Fixed Time principle: the predicate is evaluated (and charged) exactly
	// once per iTuple per pass, independent of match outcomes.
	relA, relB := genJoinSized(29, 5, 8, 6)
	h := sim.NewHost(0)
	cop := newCop(t, h, 2, 5)
	tabs := loadTables(t, h, cop.Sealer(), relA, relB)
	pred := relation.Pairwise(keyEqui(t, relA, relB))
	res, err := Join5(cop, tabs, pred)
	if err != nil {
		t.Fatal(err)
	}
	scans := Join5Scans(6, 2)
	if got, want := res.Stats.PredEvals, uint64(scans*40); got != want {
		t.Fatalf("predicate evaluations %d, want %d", got, want)
	}
}
