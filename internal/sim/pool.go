package sim

import "sync"

// bufPool recycles plaintext staging buffers for the batched transfer
// paths (ScanRange, TransformRange): cells are opened into a pooled buffer,
// consumed, and the buffer returned, so steady-state batched transfers
// allocate nothing for plaintexts. Sealed ciphertexts destined for host
// cells are retained by the host and can never be pooled.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}
