package sim

import (
	"fmt"

	"ppj/internal/relation"
)

// Cartesian is T's streaming view of D = X₁ × … × X_J (§5.2.1). The thesis
// assumes D is conceptually materialised in H's memory and indexed by a
// single logical index; "in real implementation, a logical index can be
// easily converted into the individual index of each of the J tuples and D
// need not be materialized". Cartesian performs exactly that conversion in
// row-major order (the last table varies fastest) and caches the decoded
// tuple of each table inside T, so a sequential scan of D costs
// |X₁| + |X₁||X₂| + … underlying gets while counting one logical read per
// iTuple — the unit the Chapter 5 cost formulas are stated in.
//
// The J cached tuples live in T's constant per-algorithm allocation
// (§5.2.1: "We assume a constant memory space allocated for iTuples,
// program code, and other necessary data structure and variables"), so they
// are not charged against the M oTuple slots.
type Cartesian struct {
	t      *Coprocessor
	tables []Table
	// strides[j] is the product of sizes of tables j+1..J-1.
	strides []int64
	size    int64
	cached  []relation.Tuple
	cachedI []int64
}

// NewCartesian builds the view. The product of table sizes must be nonzero
// and fit in int64.
func NewCartesian(t *Coprocessor, tables []Table) (*Cartesian, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("sim: cartesian product of zero tables")
	}
	size := int64(1)
	for _, tab := range tables {
		if tab.N <= 0 {
			return nil, fmt.Errorf("sim: cartesian product with empty table %d", tab.Region)
		}
		if size > (1<<62)/tab.N {
			return nil, fmt.Errorf("sim: cartesian product overflows int64")
		}
		size *= tab.N
	}
	strides := make([]int64, len(tables))
	s := int64(1)
	for j := len(tables) - 1; j >= 0; j-- {
		strides[j] = s
		s *= tables[j].N
	}
	cachedI := make([]int64, len(tables))
	for i := range cachedI {
		cachedI[i] = -1
	}
	return &Cartesian{
		t:       t,
		tables:  tables,
		strides: strides,
		size:    size,
		cached:  make([]relation.Tuple, len(tables)),
		cachedI: cachedI,
	}, nil
}

// Size returns L = |D|.
func (c *Cartesian) Size() int64 { return c.size }

// Tables returns the participating tables.
func (c *Cartesian) Tables() []Table { return c.tables }

// Coords decomposes a logical index into per-table row indices.
func (c *Cartesian) Coords(logical int64) []int64 {
	out := make([]int64, len(c.tables))
	for j := range c.tables {
		out[j] = (logical / c.strides[j]) % c.tables[j].N
	}
	return out
}

// Logical recomposes per-table coordinates into the logical index.
func (c *Cartesian) Logical(coords []int64) int64 {
	var idx int64
	for j := range c.tables {
		idx += coords[j] * c.strides[j]
	}
	return idx
}

// Read materialises the iTuple at a logical index inside T, fetching only
// the per-table tuples whose coordinate changed since the previous Read.
// The returned slice is valid until the next Read.
func (c *Cartesian) Read(logical int64) ([]relation.Tuple, error) {
	if logical < 0 || logical >= c.size {
		return nil, fmt.Errorf("sim: logical index %d out of range [0,%d)", logical, c.size)
	}
	c.t.CountLogicalRead()
	for j := range c.tables {
		rowIdx := (logical / c.strides[j]) % c.tables[j].N
		if c.cachedI[j] == rowIdx {
			continue
		}
		tup, err := c.t.GetTuple(c.tables[j], rowIdx)
		if err != nil {
			return nil, err
		}
		c.cached[j] = tup
		c.cachedI[j] = rowIdx
	}
	return c.cached, nil
}

// Schemas returns the component schemas in order.
func (c *Cartesian) Schemas() []*relation.Schema {
	out := make([]*relation.Schema, len(c.tables))
	for i, tab := range c.tables {
		out[i] = tab.Schema
	}
	return out
}
