package sim

import (
	"fmt"
	"sync"
)

// RegionID identifies a named array of ciphertext cells in H's memory.
type RegionID int32

// Host is the untrusted server. It stores only ciphertext, relays every
// coprocessor access into the trace, and — in the malicious-adversary tests —
// lets an attacker tamper with cells (which T must detect via authenticated
// encryption, §3.3.1).
type Host struct {
	mu      sync.Mutex
	regions []*region
	byName  map[string]RegionID
	trace   *Trace
	// diskWrites counts cells H persisted at T's request.
	diskWrites uint64
}

type region struct {
	name  string
	cells [][]byte
}

// NewHost creates a host whose trace records up to recordLimit raw events.
func NewHost(recordLimit int) *Host {
	return &Host{byName: make(map[string]RegionID), trace: NewTrace(recordLimit)}
}

// Trace exposes the access sequence observed so far.
func (h *Host) Trace() *Trace { return h.trace }

// CreateRegion allocates a named region of n (initially nil) cells and
// returns its id. Regions grow automatically when written past the end.
func (h *Host) CreateRegion(name string, n int) (RegionID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.byName[name]; dup {
		return 0, fmt.Errorf("sim: region %q already exists", name)
	}
	id := RegionID(len(h.regions))
	h.regions = append(h.regions, &region{name: name, cells: make([][]byte, n)})
	h.byName[name] = id
	return id, nil
}

// MustCreateRegion is CreateRegion that panics on error.
func (h *Host) MustCreateRegion(name string, n int) RegionID {
	id, err := h.CreateRegion(name, n)
	if err != nil {
		panic(err)
	}
	return id
}

// RegionLen returns the current number of cells in a region.
func (h *Host) RegionLen(id RegionID) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.regions[id].cells)
}

// RegionName returns the region's name.
func (h *Host) RegionName(id RegionID) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.regions[id].name
}

// Store writes ciphertext into a cell without tracing. It models data
// arriving from outside T's access pattern: providers uploading their
// encrypted relations before the join starts.
func (h *Host) Store(id RegionID, index int64, ciphertext []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.grow(id, index)
	h.regions[id].cells[index] = ciphertext
}

// Inspect returns the raw ciphertext of a cell without tracing: the
// honest-but-curious adversary reading H's memory (§3.3.2). It returns nil
// for never-written cells.
func (h *Host) Inspect(id RegionID, index int64) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.regions[id]
	if index < 0 || index >= int64(len(r.cells)) {
		return nil
	}
	return r.cells[index]
}

// Tamper lets a malicious adversary overwrite a cell's ciphertext without
// tracing. T's next authenticated read of the cell must fail (§3.3.1).
func (h *Host) Tamper(id RegionID, index int64, ciphertext []byte) {
	h.Store(id, index, ciphertext)
}

// DiskWrites reports how many cells H has persisted at T's request.
func (h *Host) DiskWrites() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.diskWrites
}

// read serves a traced coprocessor get.
func (h *Host) read(id RegionID, index int64) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.regions[id]
	if index < 0 || index >= int64(len(r.cells)) {
		return nil, fmt.Errorf("sim: get %s[%d] out of range (len %d)", r.name, index, len(r.cells))
	}
	h.trace.Append(Event{Op: OpGet, Region: id, Index: index})
	c := r.cells[index]
	if c == nil {
		return nil, fmt.Errorf("sim: get %s[%d] of unwritten cell", r.name, index)
	}
	return c, nil
}

// write serves a traced coprocessor put.
func (h *Host) write(id RegionID, index int64, ciphertext []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if index < 0 {
		return fmt.Errorf("sim: put %s[%d] negative index", h.regions[id].name, index)
	}
	h.grow(id, index)
	h.trace.Append(Event{Op: OpPut, Region: id, Index: index})
	h.regions[id].cells[index] = ciphertext
	return nil
}

// diskWrite serves a traced request to persist a cell.
func (h *Host) diskWrite(id RegionID, index int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.regions[id]
	if index < 0 || index >= int64(len(r.cells)) {
		return fmt.Errorf("sim: disk write %s[%d] out of range", r.name, index)
	}
	h.trace.Append(Event{Op: OpDisk, Region: id, Index: index})
	h.diskWrites++
	return nil
}

func (h *Host) grow(id RegionID, index int64) {
	r := h.regions[id]
	for int64(len(r.cells)) <= index {
		r.cells = append(r.cells, nil)
	}
}

// FreshRegion creates a region with a unique name derived from prefix, for
// algorithms that allocate scratch space without coordinating names.
func (h *Host) FreshRegion(prefix string, n int) RegionID {
	h.mu.Lock()
	defer h.mu.Unlock()
	name := prefix
	for i := 2; ; i++ {
		if _, dup := h.byName[name]; !dup {
			break
		}
		name = fmt.Sprintf("%s#%d", prefix, i)
	}
	id := RegionID(len(h.regions))
	h.regions = append(h.regions, &region{name: name, cells: make([][]byte, n)})
	h.byName[name] = id
	return id
}

// copyOut serves T's request that H copy ciphertext cells from one region to
// another (e.g. persisting the first N scratch cells as output). The copy is
// host-local — the cells never transit T — but it is part of the observable
// pattern and is traced as disk writes of the destination cells.
func (h *Host) copyOut(dst RegionID, dstFrom int64, src RegionID, srcFrom, n int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.regions[src]
	if srcFrom < 0 || srcFrom+n > int64(len(s.cells)) {
		return fmt.Errorf("sim: copy out of %s[%d..%d) out of range", s.name, srcFrom, srcFrom+n)
	}
	for i := int64(0); i < n; i++ {
		h.grow(dst, dstFrom+i)
		h.regions[dst].cells[dstFrom+i] = s.cells[srcFrom+i]
		h.trace.Append(Event{Op: OpDisk, Region: dst, Index: dstFrom + i})
		h.diskWrites++
	}
	return nil
}
