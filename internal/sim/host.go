package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// RegionID identifies a named array of ciphertext cells in H's memory.
type RegionID int32

// Host is the untrusted server. It stores only ciphertext, relays every
// coprocessor access into the trace, and — in the malicious-adversary tests —
// lets an attacker tamper with cells (which T must detect via authenticated
// encryption, §3.3.1).
//
// Locking is sharded so P coprocessors scale: the region table (the regions
// slice and the name index) is guarded by tableMu and is append-only, so
// lookups take only a read lock; each region carries its own mutex guarding
// its cells; the host trace has its own mutex and batched operations append
// a whole batch of events under one acquisition. The host trace is the
// adversary's view — with a single coprocessor attached it is the exact
// ordered sequence (digest plus optional raw prefix); with several attached
// the interleaving is nondeterministic, so the host degrades it to a
// lock-free count-only sink and the per-device Coprocessor traces stay
// authoritative for the privacy tests.
type Host struct {
	tableMu sync.RWMutex
	regions []*region
	byName  map[string]RegionID

	traceMu sync.Mutex
	trace   *Trace

	// attached counts coprocessors constructed against this host; past one,
	// trace recording switches to the count-only fast path.
	attached atomic.Int32

	// diskWrites counts cells H persisted at T's request.
	diskWrites atomic.Uint64
}

type region struct {
	name string
	mu   sync.Mutex
	// cells only grows, under mu. Cell slices are replaced wholesale on
	// write, never mutated in place, so a reference obtained under mu stays
	// valid after release.
	cells [][]byte
}

// NewHost creates a host whose trace records up to recordLimit raw events.
func NewHost(recordLimit int) *Host {
	return &Host{byName: make(map[string]RegionID), trace: NewTrace(recordLimit)}
}

// Trace exposes the access sequence observed so far. It must only be read
// once the coprocessors are quiescent (tests do), as appends are concurrent.
func (h *Host) Trace() *Trace { return h.trace }

// regionFor resolves an id to its region under the table read lock.
func (h *Host) regionFor(id RegionID) *region {
	h.tableMu.RLock()
	r := h.regions[id]
	h.tableMu.RUnlock()
	return r
}

// traceRange appends n contiguous events of one op under a single trace
// lock acquisition (or folds them into the count-only sink when several
// devices are attached).
func (h *Host) traceRange(op Op, id RegionID, from, n int64) {
	if n <= 0 {
		return
	}
	if h.attached.Load() > 1 {
		h.trace.SkipCount(uint64(n))
		return
	}
	h.traceMu.Lock()
	for i := int64(0); i < n; i++ {
		h.trace.Append(Event{Op: op, Region: id, Index: from + i})
	}
	h.traceMu.Unlock()
}

// traceOne appends a single event.
func (h *Host) traceOne(e Event) {
	if h.attached.Load() > 1 {
		h.trace.SkipCount(1)
		return
	}
	h.traceMu.Lock()
	h.trace.Append(e)
	h.traceMu.Unlock()
}

// CreateRegion allocates a named region of n (initially nil) cells and
// returns its id. Regions grow automatically when written past the end.
func (h *Host) CreateRegion(name string, n int) (RegionID, error) {
	h.tableMu.Lock()
	defer h.tableMu.Unlock()
	if _, dup := h.byName[name]; dup {
		return 0, fmt.Errorf("sim: region %q already exists", name)
	}
	id := RegionID(len(h.regions))
	h.regions = append(h.regions, &region{name: name, cells: make([][]byte, n)})
	h.byName[name] = id
	return id, nil
}

// MustCreateRegion is CreateRegion that panics on error.
func (h *Host) MustCreateRegion(name string, n int) RegionID {
	id, err := h.CreateRegion(name, n)
	if err != nil {
		panic(err)
	}
	return id
}

// RegionLen returns the current number of cells in a region.
func (h *Host) RegionLen(id RegionID) int {
	r := h.regionFor(id)
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// RegionName returns the region's name.
func (h *Host) RegionName(id RegionID) string {
	return h.regionFor(id).name
}

// Store writes ciphertext into a cell without tracing. It models data
// arriving from outside T's access pattern: providers uploading their
// encrypted relations before the join starts.
func (h *Host) Store(id RegionID, index int64, ciphertext []byte) {
	r := h.regionFor(id)
	r.mu.Lock()
	r.grow(index)
	r.cells[index] = ciphertext
	r.mu.Unlock()
}

// Inspect returns the raw ciphertext of a cell without tracing: the
// honest-but-curious adversary reading H's memory (§3.3.2). It returns nil
// for never-written cells.
func (h *Host) Inspect(id RegionID, index int64) []byte {
	r := h.regionFor(id)
	r.mu.Lock()
	defer r.mu.Unlock()
	if index < 0 || index >= int64(len(r.cells)) {
		return nil
	}
	return r.cells[index]
}

// Tamper lets a malicious adversary overwrite a cell's ciphertext without
// tracing. T's next authenticated read of the cell must fail (§3.3.1).
func (h *Host) Tamper(id RegionID, index int64, ciphertext []byte) {
	h.Store(id, index, ciphertext)
}

// DiskWrites reports how many cells H has persisted at T's request.
func (h *Host) DiskWrites() uint64 {
	return h.diskWrites.Load()
}

// read serves a traced coprocessor get.
func (h *Host) read(id RegionID, index int64) ([]byte, error) {
	r := h.regionFor(id)
	r.mu.Lock()
	if index < 0 || index >= int64(len(r.cells)) {
		n := len(r.cells)
		r.mu.Unlock()
		return nil, fmt.Errorf("sim: get %s[%d] out of range (len %d)", r.name, index, n)
	}
	c := r.cells[index]
	r.mu.Unlock()
	h.traceOne(Event{Op: OpGet, Region: id, Index: index})
	if c == nil {
		return nil, fmt.Errorf("sim: get %s[%d] of unwritten cell", r.name, index)
	}
	return c, nil
}

// readRange serves a traced get of cells [from, from+n), appending the
// ciphertext references to dst. The region lock and the trace lock are each
// taken once for the whole batch; the per-cell event sequence is identical
// to n sequential reads. On error the events of the successfully served
// prefix (and, for an unwritten cell, its own get) are still traced, exactly
// as the sequential loop would have.
func (h *Host) readRange(id RegionID, from, n int64, dst [][]byte) ([][]byte, error) {
	r := h.regionFor(id)
	r.mu.Lock()
	var (
		served int64
		rerr   error
		nilAt  = int64(-1)
	)
	for k := int64(0); k < n; k++ {
		idx := from + k
		if idx < 0 || idx >= int64(len(r.cells)) {
			rerr = fmt.Errorf("sim: get %s[%d] out of range (len %d)", r.name, idx, len(r.cells))
			break
		}
		c := r.cells[idx]
		if c == nil {
			nilAt = idx
			rerr = fmt.Errorf("sim: get %s[%d] of unwritten cell", r.name, idx)
			break
		}
		dst = append(dst, c)
		served++
	}
	r.mu.Unlock()
	traced := served
	if nilAt >= 0 {
		traced++ // the sequential loop traces the get before seeing the nil
	}
	h.traceRange(OpGet, id, from, traced)
	return dst, rerr
}

// readBatch is readRange for arbitrary (not necessarily contiguous) indices.
func (h *Host) readBatch(id RegionID, indices []int64, dst [][]byte) ([][]byte, error) {
	r := h.regionFor(id)
	r.mu.Lock()
	var (
		served int
		rerr   error
		nilHit bool
	)
	for _, idx := range indices {
		if idx < 0 || idx >= int64(len(r.cells)) {
			rerr = fmt.Errorf("sim: get %s[%d] out of range (len %d)", r.name, idx, len(r.cells))
			break
		}
		c := r.cells[idx]
		if c == nil {
			nilHit = true
			rerr = fmt.Errorf("sim: get %s[%d] of unwritten cell", r.name, idx)
			break
		}
		dst = append(dst, c)
		served++
	}
	r.mu.Unlock()
	traced := served
	if nilHit {
		traced++
	}
	if h.attached.Load() > 1 {
		h.trace.SkipCount(uint64(traced))
		return dst, rerr
	}
	h.traceMu.Lock()
	for _, idx := range indices[:traced] {
		h.trace.Append(Event{Op: OpGet, Region: id, Index: idx})
	}
	h.traceMu.Unlock()
	return dst, rerr
}

// write serves a traced coprocessor put.
func (h *Host) write(id RegionID, index int64, ciphertext []byte) error {
	r := h.regionFor(id)
	if index < 0 {
		return fmt.Errorf("sim: put %s[%d] negative index", r.name, index)
	}
	r.mu.Lock()
	r.grow(index)
	r.cells[index] = ciphertext
	r.mu.Unlock()
	h.traceOne(Event{Op: OpPut, Region: id, Index: index})
	return nil
}

// writeRange serves a traced put of cells [from, from+n) in one region-lock
// and one trace-lock acquisition. The event sequence matches n sequential
// writes.
func (h *Host) writeRange(id RegionID, from int64, cts [][]byte) error {
	n := int64(len(cts))
	if n == 0 {
		return nil
	}
	r := h.regionFor(id)
	if from < 0 {
		return fmt.Errorf("sim: put %s[%d] negative index", r.name, from)
	}
	r.mu.Lock()
	r.grow(from + n - 1)
	copy(r.cells[from:], cts)
	r.mu.Unlock()
	h.traceRange(OpPut, id, from, n)
	return nil
}

// writeBatch is writeRange for arbitrary indices.
func (h *Host) writeBatch(id RegionID, indices []int64, cts [][]byte) error {
	r := h.regionFor(id)
	for _, idx := range indices {
		if idx < 0 {
			return fmt.Errorf("sim: put %s[%d] negative index", r.name, idx)
		}
	}
	r.mu.Lock()
	for k, idx := range indices {
		r.grow(idx)
		r.cells[idx] = cts[k]
	}
	r.mu.Unlock()
	if h.attached.Load() > 1 {
		h.trace.SkipCount(uint64(len(indices)))
		return nil
	}
	h.traceMu.Lock()
	for _, idx := range indices {
		h.trace.Append(Event{Op: OpPut, Region: id, Index: idx})
	}
	h.traceMu.Unlock()
	return nil
}

// transformRange serves a batched read-modify-write: for each k in [0, n) it
// reads src[srcFrom+k], passes the ciphertext through fn, and writes the
// result to dst[dstFrom+k]. The per-cell event sequence (get src, put dst,
// interleaved) is identical to the sequential loop, but the region locks are
// held once for the whole batch — fn therefore runs under the region
// lock(s) and must not touch the host. Both regions are locked in RegionID
// order so concurrent cross-region transforms cannot deadlock.
//
// It returns the number of completed get/put pairs and whether the failing
// cell's get itself succeeded (true when fn failed after a good read), so
// the caller can mirror the exact sequential per-device accounting.
func (h *Host) transformRange(dst RegionID, dstFrom int64, src RegionID, srcFrom, n int64,
	fn func(k int64, ct []byte) ([]byte, error)) (int64, bool, error) {
	if n <= 0 {
		return 0, false, nil
	}
	if dstFrom < 0 {
		return 0, false, fmt.Errorf("sim: put %s[%d] negative index", h.RegionName(dst), dstFrom)
	}
	rs := h.regionFor(src)
	rd := h.regionFor(dst)
	// Lock in RegionID order; a self-transform locks once.
	switch {
	case src == dst:
		rs.mu.Lock()
		defer rs.mu.Unlock()
	case src < dst:
		rs.mu.Lock()
		rd.mu.Lock()
		defer rs.mu.Unlock()
		defer rd.mu.Unlock()
	default:
		rd.mu.Lock()
		rs.mu.Lock()
		defer rd.mu.Unlock()
		defer rs.mu.Unlock()
	}
	var (
		done   int64 // completed get/put pairs
		nilHit bool  // unwritten cell: host traces the get, the device must not
		fnErr  bool  // fn (or open) failed after a good read: both trace the get
		rerr   error
	)
	for k := int64(0); k < n; k++ {
		si := srcFrom + k
		if si < 0 || si >= int64(len(rs.cells)) {
			rerr = fmt.Errorf("sim: get %s[%d] out of range (len %d)", rs.name, si, len(rs.cells))
			break
		}
		c := rs.cells[si]
		if c == nil {
			nilHit = true
			rerr = fmt.Errorf("sim: get %s[%d] of unwritten cell", rs.name, si)
			break
		}
		out, err := fn(k, c)
		if err != nil {
			fnErr = true
			rerr = err
			break
		}
		rd.grow(dstFrom + k)
		rd.cells[dstFrom+k] = out
		done++
	}
	traced := uint64(2 * done)
	if nilHit || fnErr {
		traced++
	}
	if h.attached.Load() > 1 {
		h.trace.SkipCount(traced)
		return done, fnErr, rerr
	}
	h.traceMu.Lock()
	for k := int64(0); k < done; k++ {
		h.trace.Append(Event{Op: OpGet, Region: src, Index: srcFrom + k})
		h.trace.Append(Event{Op: OpPut, Region: dst, Index: dstFrom + k})
	}
	if nilHit || fnErr {
		h.trace.Append(Event{Op: OpGet, Region: src, Index: srcFrom + done})
	}
	h.traceMu.Unlock()
	return done, fnErr, rerr
}

// diskWrite serves a traced request to persist a cell.
func (h *Host) diskWrite(id RegionID, index int64) error {
	r := h.regionFor(id)
	r.mu.Lock()
	if index < 0 || index >= int64(len(r.cells)) {
		r.mu.Unlock()
		return fmt.Errorf("sim: disk write %s[%d] out of range", r.name, index)
	}
	r.mu.Unlock()
	h.traceOne(Event{Op: OpDisk, Region: id, Index: index})
	h.diskWrites.Add(1)
	return nil
}

// diskWriteRange serves a traced request to persist cells [from, from+count)
// in one lock acquisition per lock. It returns how many cells were valid
// (the traced prefix) — on an out-of-range cell the prefix is still traced
// and counted, exactly as the sequential loop would have.
func (h *Host) diskWriteRange(id RegionID, from, count int64) (int64, error) {
	r := h.regionFor(id)
	r.mu.Lock()
	length := int64(len(r.cells))
	r.mu.Unlock()
	valid := count
	var rerr error
	for k := int64(0); k < count; k++ {
		if idx := from + k; idx < 0 || idx >= length {
			valid = k
			rerr = fmt.Errorf("sim: disk write %s[%d] out of range", r.name, idx)
			break
		}
	}
	h.traceRange(OpDisk, id, from, valid)
	h.diskWrites.Add(uint64(valid))
	return valid, rerr
}

// grow extends the region to cover index with a single capacity-doubling
// allocation (never one append per cell). Caller holds r.mu.
func (r *region) grow(index int64) {
	if index < int64(len(r.cells)) {
		return
	}
	need := index + 1
	if need <= int64(cap(r.cells)) {
		r.cells = r.cells[:need]
		return
	}
	newCap := 2 * int64(cap(r.cells))
	if newCap < need {
		newCap = need
	}
	grown := make([][]byte, need, newCap)
	copy(grown, r.cells)
	r.cells = grown
}

// FreshRegion creates a region with a unique name derived from prefix, for
// algorithms that allocate scratch space without coordinating names.
func (h *Host) FreshRegion(prefix string, n int) RegionID {
	h.tableMu.Lock()
	defer h.tableMu.Unlock()
	name := prefix
	for i := 2; ; i++ {
		if _, dup := h.byName[name]; !dup {
			break
		}
		name = fmt.Sprintf("%s#%d", prefix, i)
	}
	id := RegionID(len(h.regions))
	h.regions = append(h.regions, &region{name: name, cells: make([][]byte, n)})
	h.byName[name] = id
	return id
}

// copyOut serves T's request that H copy ciphertext cells from one region to
// another (e.g. persisting the first N scratch cells as output). The copy is
// host-local — the cells never transit T — but it is part of the observable
// pattern and is traced as disk writes of the destination cells.
func (h *Host) copyOut(dst RegionID, dstFrom int64, src RegionID, srcFrom, n int64) error {
	rs := h.regionFor(src)
	rd := h.regionFor(dst)
	switch {
	case src == dst:
		rs.mu.Lock()
		defer rs.mu.Unlock()
	case src < dst:
		rs.mu.Lock()
		rd.mu.Lock()
		defer rs.mu.Unlock()
		defer rd.mu.Unlock()
	default:
		rd.mu.Lock()
		rs.mu.Lock()
		defer rd.mu.Unlock()
		defer rs.mu.Unlock()
	}
	if srcFrom < 0 || srcFrom+n > int64(len(rs.cells)) {
		return fmt.Errorf("sim: copy out of %s[%d..%d) out of range", rs.name, srcFrom, srcFrom+n)
	}
	if n > 0 {
		rd.grow(dstFrom + n - 1)
		copy(rd.cells[dstFrom:], rs.cells[srcFrom:srcFrom+n])
	}
	h.traceRange(OpDisk, dst, dstFrom, n)
	h.diskWrites.Add(uint64(n))
	return nil
}
