package sim

import (
	"fmt"
	"math/rand/v2"

	"ppj/internal/relation"
)

// Stats counts the quantities the paper's cost analysis is stated in:
// tuple transfers between T and H (every get implies a decryption, every put
// an encryption, §4.3 "Cost Analysis"), plus comparison and predicate
// counters for the oblivious-sort and fixed-time accounting.
type Stats struct {
	Gets         uint64 // transfers H -> T (= decryptions)
	Puts         uint64 // transfers T -> H (= encryptions)
	LogicalReads uint64 // iTuples of the cartesian product D materialised in T
	Comparisons  uint64 // oblivious compare-exchanges
	PredEvals    uint64 // join predicate evaluations (charged fixed time)
	DiskRequests uint64 // cells T asked H to persist
}

// Transfers is the paper's headline cost: tuples moved in and out of T.
func (s Stats) Transfers() uint64 { return s.Gets + s.Puts }

// Add accumulates another Stats into s.
func (s *Stats) Add(o Stats) {
	s.Gets += o.Gets
	s.Puts += o.Puts
	s.LogicalReads += o.LogicalReads
	s.Comparisons += o.Comparisons
	s.PredEvals += o.PredEvals
	s.DiskRequests += o.DiskRequests
}

// Coprocessor is the trusted device T. All interaction with the outside
// world goes through Get/Put/RequestDisk, each of which is traced by the
// host; internal state (decrypted tuples, counters, the RNG) is invisible
// to the adversary. Its free memory holds at most Memory tuples of
// algorithm-managed state (the paper's M; the implicit "+2" staging slots
// for the tuples currently being compared are not charged, matching the
// M+2 convention of §4.1).
type Coprocessor struct {
	host    *Host
	sealer  Sealer
	memory  int
	memUsed int
	stats   Stats
	rng     *rand.Rand
	// trace is T's own copy of its access sequence. The host trace is the
	// adversary's view; with several coprocessors attached to one host the
	// host view interleaves nondeterministically, so per-device privacy
	// tests compare these local traces instead.
	trace *Trace
	// Reused slice headers for the batched transfer paths (batch.go). A
	// Coprocessor is single-goroutine by contract — only the Host it talks
	// to is shared — so unsynchronised scratch is safe.
	ctScratch   [][]byte
	sealScratch [][]byte
}

// Config parameterises a coprocessor.
type Config struct {
	// Memory is the free memory M in tuples. Zero means "effectively
	// unbounded" (used by reference runs and the service defaults).
	Memory int
	// Sealer is the authenticated encryption; nil selects a fresh random
	// OCBSealer.
	Sealer Sealer
	// Seed makes T's internal randomness (oblivious shuffles, segment
	// orders) deterministic; 0 draws a random seed.
	Seed uint64
}

// NewCoprocessor attaches a coprocessor to h.
func NewCoprocessor(h *Host, cfg Config) (*Coprocessor, error) {
	s := cfg.Sealer
	if s == nil {
		var err error
		s, err = NewRandomOCBSealer()
		if err != nil {
			return nil, err
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Uint64()
	}
	mem := cfg.Memory
	if mem <= 0 {
		mem = 1 << 40
	}
	h.attached.Add(1)
	return &Coprocessor{
		host:   h,
		sealer: s,
		memory: mem,
		rng:    rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc908)),
		trace:  NewTrace(0),
	}, nil
}

// Host returns the attached host.
func (t *Coprocessor) Host() *Host { return t.host }

// Trace returns T's local copy of its own access sequence.
func (t *Coprocessor) Trace() *Trace { return t.trace }

// Sealer returns the device's authenticated encryption.
func (t *Coprocessor) Sealer() Sealer { return t.sealer }

// Memory returns the device's free memory M in tuples.
func (t *Coprocessor) Memory() int { return t.memory }

// MemoryFree returns the unreserved portion of M.
func (t *Coprocessor) MemoryFree() int { return t.memory - t.memUsed }

// Rand exposes T's internal randomness (never observable by H).
func (t *Coprocessor) Rand() *rand.Rand { return t.rng }

// Stats returns a snapshot of the cost counters.
func (t *Coprocessor) Stats() Stats { return t.stats }

// ResetStats zeroes the cost counters (e.g. between experiment phases).
func (t *Coprocessor) ResetStats() { t.stats = Stats{} }

// Grant reserves n tuple slots of T's memory, returning a release function.
// Algorithms wrap every buffer they keep inside the device in a Grant so the
// simulator enforces the M-tuple bound the paper designs around.
func (t *Coprocessor) Grant(n int) (func(), error) {
	if n < 0 {
		return nil, fmt.Errorf("sim: negative memory grant %d", n)
	}
	if t.memUsed+n > t.memory {
		return nil, fmt.Errorf("sim: memory grant of %d tuples exceeds free memory (%d of %d in use)",
			n, t.memUsed, t.memory)
	}
	t.memUsed += n
	released := false
	return func() {
		if !released {
			released = true
			t.memUsed -= n
		}
	}, nil
}

// Get transfers a cell from H into T and decrypts it. The access is traced.
func (t *Coprocessor) Get(id RegionID, index int64) ([]byte, error) {
	ct, err := t.host.read(id, index)
	if err != nil {
		return nil, err
	}
	t.trace.Append(Event{Op: OpGet, Region: id, Index: index})
	t.stats.Gets++
	pt, err := t.sealer.Open(ct)
	if err != nil {
		// Tampering detected: the computation must terminate (§3.3.1).
		return nil, fmt.Errorf("sim: get %s[%d]: %w", t.host.RegionName(id), index, err)
	}
	return pt, nil
}

// Put encrypts a plaintext inside T and transfers it to H. Traced.
func (t *Coprocessor) Put(id RegionID, index int64, plaintext []byte) error {
	t.trace.Append(Event{Op: OpPut, Region: id, Index: index})
	t.stats.Puts++
	return t.host.write(id, index, t.sealer.Seal(plaintext))
}

// RequestDisk asks H to persist cells [from, from+count) of a region. The
// whole range is validated and traced under one lock acquisition per lock;
// on an out-of-range cell the valid prefix is still traced and counted,
// exactly as the old per-cell loop did.
func (t *Coprocessor) RequestDisk(id RegionID, from, count int64) error {
	if count <= 0 {
		return nil
	}
	valid, err := t.host.diskWriteRange(id, from, count)
	for i := int64(0); i < valid; i++ {
		t.trace.Append(Event{Op: OpDisk, Region: id, Index: from + i})
	}
	t.stats.DiskRequests += uint64(valid)
	return err
}

// ChargeCompare records one fixed-time comparison.
func (t *Coprocessor) ChargeCompare() { t.stats.Comparisons++ }

// ChargePredicate records one fixed-time predicate evaluation. The paper
// pads evaluation to constant time by burning cycles (§4.3); the simulator
// charges the constant instead.
func (t *Coprocessor) ChargePredicate() { t.stats.PredEvals++ }

// CountLogicalRead records the materialisation of one iTuple of D.
func (t *Coprocessor) CountLogicalRead() { t.stats.LogicalReads++ }

// Table references an encrypted relation resident in H's memory.
type Table struct {
	Region RegionID
	N      int64
	Schema *relation.Schema
}

// LoadTable encrypts a relation under sealer and stores it on h, untraced
// (providers upload before T's computation starts). The returned Table is
// what the join algorithms operate on.
func LoadTable(h *Host, sealer Sealer, name string, rel *relation.Relation) (Table, error) {
	encs, err := rel.EncodeAll()
	if err != nil {
		return Table{}, fmt.Errorf("sim: loading %s: %w", name, err)
	}
	id, err := h.CreateRegion(name, len(encs))
	if err != nil {
		return Table{}, err
	}
	for i, e := range encs {
		h.Store(id, int64(i), sealer.Seal(e))
	}
	return Table{Region: id, N: int64(len(encs)), Schema: rel.Schema}, nil
}

// GetTuple is Get plus schema decoding.
func (t *Coprocessor) GetTuple(tab Table, index int64) (relation.Tuple, error) {
	b, err := t.Get(tab.Region, index)
	if err != nil {
		return nil, err
	}
	tup, err := tab.Schema.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("sim: decoding %s[%d]: %w", t.host.RegionName(tab.Region), index, err)
	}
	return tup, nil
}

// PutTuple is schema encoding plus Put.
func (t *Coprocessor) PutTuple(tab Table, index int64, tup relation.Tuple) error {
	b, err := tab.Schema.Encode(tup)
	if err != nil {
		return err
	}
	return t.Put(tab.Region, index, b)
}

// RequestCopyOut asks H to copy n sealed cells from src to dst host-side
// (the cells never transit T, so no transfers are charged; the request is
// traced as disk writes).
func (t *Coprocessor) RequestCopyOut(dst RegionID, dstFrom int64, src RegionID, srcFrom, n int64) error {
	if err := t.host.copyOut(dst, dstFrom, src, srcFrom, n); err != nil {
		return err
	}
	for i := int64(0); i < n; i++ {
		t.trace.Append(Event{Op: OpDisk, Region: dst, Index: dstFrom + i})
	}
	t.stats.DiskRequests += uint64(n)
	return nil
}
