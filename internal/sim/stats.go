package sim

import "sync/atomic"

// AtomicStats is a thread-safe accumulator of Stats, used to aggregate the
// cost counters of many coprocessors running concurrently (the serving
// layer folds every finished job's counters into one of these). The
// zero value is ready to use.
type AtomicStats struct {
	gets         atomic.Uint64
	puts         atomic.Uint64
	logicalReads atomic.Uint64
	comparisons  atomic.Uint64
	predEvals    atomic.Uint64
	diskRequests atomic.Uint64
}

// Add folds a snapshot into the accumulator.
func (a *AtomicStats) Add(s Stats) {
	a.gets.Add(s.Gets)
	a.puts.Add(s.Puts)
	a.logicalReads.Add(s.LogicalReads)
	a.comparisons.Add(s.Comparisons)
	a.predEvals.Add(s.PredEvals)
	a.diskRequests.Add(s.DiskRequests)
}

// Snapshot returns the accumulated totals as a plain Stats value.
func (a *AtomicStats) Snapshot() Stats {
	return Stats{
		Gets:         a.gets.Load(),
		Puts:         a.puts.Load(),
		LogicalReads: a.logicalReads.Load(),
		Comparisons:  a.comparisons.Load(),
		PredEvals:    a.predEvals.Load(),
		DiskRequests: a.diskRequests.Load(),
	}
}
