package sim

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"ppj/internal/ocb"
)

// Sealer is the authenticated encryption used for every cell that leaves T.
// Implementations must be semantically secure in the sense the algorithms
// rely on (equal plaintexts sealed twice are indistinguishable) and must
// detect any tampering on Open.
type Sealer interface {
	// Seal encrypts and authenticates a plaintext into a fresh buffer.
	Seal(plaintext []byte) []byte
	// SealTo appends the sealed plaintext to dst and returns the extended
	// slice (append semantics, like crypto/cipher AEADs). When dst has
	// sufficient capacity no allocation occurs, so steady-state sealing
	// through a reused buffer is allocation-free.
	SealTo(dst, plaintext []byte) []byte
	// Open verifies and decrypts a Seal output into a fresh buffer.
	Open(ciphertext []byte) ([]byte, error)
	// OpenTo appends the verified plaintext to dst and returns the extended
	// slice. As with SealTo, a reused dst makes steady-state opening
	// allocation-free.
	OpenTo(dst, ciphertext []byte) ([]byte, error)
	// Overhead is the ciphertext expansion in bytes.
	Overhead() int
}

// ErrTamper is returned when an authenticated read fails verification; the
// coprocessor terminates the computation on it (§3.3.1).
var ErrTamper = errors.New("sim: ciphertext failed authentication, host tampering detected")

// OCBSealer seals each cell as an independent OCB message under a fresh
// counter nonce. Output layout: nonce || ciphertext || tag.
//
// The thesis instead chains all tuples of a sort round into one incremental
// OCB message to shave block-cipher calls (§4.4.1); per-cell sealing changes
// only that constant factor, never the host access pattern, and lets cells
// be re-encrypted independently during oblivious sorting.
type OCBSealer struct {
	mode  *ocb.Mode
	nonce atomic.Uint64
}

// NewOCBSealer builds a sealer from a 16/24/32-byte AES key.
func NewOCBSealer(key []byte) (*OCBSealer, error) {
	m, err := ocb.New(key)
	if err != nil {
		return nil, err
	}
	return &OCBSealer{mode: m}, nil
}

// NewRandomOCBSealer builds a sealer with a fresh random 128-bit key.
func NewRandomOCBSealer() (*OCBSealer, error) {
	key := make([]byte, 16)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("sim: generating key: %w", err)
	}
	return NewOCBSealer(key)
}

// Seal implements Sealer.
func (s *OCBSealer) Seal(plaintext []byte) []byte {
	return s.SealTo(make([]byte, 0, ocb.NonceSize+len(plaintext)+ocb.TagSize), plaintext)
}

// SealTo implements Sealer. ocb.Mode.Seal is itself append-style, so the
// whole path is allocation-free once dst has capacity for
// nonce || ciphertext || tag.
func (s *OCBSealer) SealTo(dst, plaintext []byte) []byte {
	var nonce [ocb.NonceSize]byte
	binary.BigEndian.PutUint64(nonce[8:], s.nonce.Add(1))
	dst = append(dst, nonce[:]...)
	return s.mode.Seal(dst, nonce, plaintext)
}

// Open implements Sealer.
func (s *OCBSealer) Open(ciphertext []byte) ([]byte, error) {
	return s.OpenTo(nil, ciphertext)
}

// OpenTo implements Sealer.
func (s *OCBSealer) OpenTo(dst, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < ocb.NonceSize+ocb.TagSize {
		return nil, fmt.Errorf("%w (short ciphertext)", ErrTamper)
	}
	var nonce [ocb.NonceSize]byte
	copy(nonce[:], ciphertext[:ocb.NonceSize])
	pt, err := s.mode.Open(dst, nonce, ciphertext[ocb.NonceSize:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTamper, err)
	}
	return pt, nil
}

// Overhead implements Sealer.
func (s *OCBSealer) Overhead() int { return ocb.NonceSize + ocb.TagSize }

// PlainSealer is a pass-through sealer used for full-scale cost measurement
// runs where billions of AES calls would dominate the wall clock. It still
// detects (unauthenticated) structural corruption via a marker byte, and is
// never used by the service layer.
type PlainSealer struct{}

const plainMarker = 0x5A

// Seal implements Sealer.
func (PlainSealer) Seal(plaintext []byte) []byte {
	return PlainSealer{}.SealTo(make([]byte, 0, 1+len(plaintext)), plaintext)
}

// SealTo implements Sealer.
func (PlainSealer) SealTo(dst, plaintext []byte) []byte {
	dst = append(dst, plainMarker)
	return append(dst, plaintext...)
}

// Open implements Sealer.
func (PlainSealer) Open(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < 1 || ciphertext[0] != plainMarker {
		return nil, fmt.Errorf("%w (missing marker)", ErrTamper)
	}
	return ciphertext[1:], nil
}

// OpenTo implements Sealer.
func (PlainSealer) OpenTo(dst, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < 1 || ciphertext[0] != plainMarker {
		return nil, fmt.Errorf("%w (missing marker)", ErrTamper)
	}
	return append(dst, ciphertext[1:]...), nil
}

// Overhead implements Sealer.
func (PlainSealer) Overhead() int { return 1 }
