// Package sim simulates the paper's hardware platform: an untrusted host H
// (general purpose machine providing memory and disk) with an attached
// secure coprocessor T (IBM 4758/4764-class device with a small protected
// memory). The privacy definitions (Def. 1 §4.2, Def. 3 §5.1.2) quantify
// over exactly one observable: the ordered list of host locations T reads
// and writes. The simulator therefore records every such access in an
// append-only Trace, and enforces T's memory capacity so algorithms cannot
// cheat by buffering more than M tuples inside the device.
package sim

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Op is the kind of a host-visible access.
type Op uint8

const (
	// OpGet is a transfer from H to T (T reads and decrypts a cell).
	OpGet Op = iota
	// OpPut is a transfer from T to H (T encrypts and writes a cell).
	OpPut
	// OpDisk is H persisting a cell to disk at T's request ("Request H to
	// write scratch[] to disk").
	OpDisk
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDisk:
		return "disk"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Event is one access to a host location: an element of the ordered list
// J_Ā of Definition 3.
type Event struct {
	Op     Op
	Region RegionID
	Index  int64
}

// String renders an event as e.g. "get B[3]".
func (e Event) String() string {
	return fmt.Sprintf("%s r%d[%d]", e.Op, e.Region, e.Index)
}

// Trace accumulates the access sequence. To keep multi-hundred-million-event
// runs cheap it maintains an order-sensitive FNV-1a digest and a count, and
// optionally records a bounded prefix of raw events for the adversary's
// fine-grained distinguishers. The count is atomic so a multi-device host
// can fold accesses in without serialising on the digest (SkipCount); the
// digest and raw events are only meaningful for single-writer traces.
type Trace struct {
	hash        uint64
	count       atomic.Uint64
	events      []Event
	recordLimit int
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewTrace creates a trace that records up to recordLimit raw events
// (0 disables raw recording; the digest and count are always maintained).
func NewTrace(recordLimit int) *Trace {
	return &Trace{hash: fnvOffset, recordLimit: recordLimit}
}

// Append records one access.
func (t *Trace) Append(e Event) {
	var buf [13]byte
	buf[0] = byte(e.Op)
	binary.BigEndian.PutUint32(buf[1:], uint32(e.Region))
	binary.BigEndian.PutUint64(buf[5:], uint64(e.Index))
	h := t.hash
	for _, b := range buf {
		h ^= uint64(b)
		h *= fnvPrime
	}
	t.hash = h
	t.count.Add(1)
	if len(t.events) < t.recordLimit {
		t.events = append(t.events, e)
	}
}

// SkipCount counts n accesses without folding them into the digest. The
// multi-device host uses it as a lock-free sink: with several coprocessors
// attached the interleaved order is nondeterministic, so only the total is
// meaningful (the per-device traces stay authoritative).
func (t *Trace) SkipCount(n uint64) { t.count.Add(n) }

// Count returns the number of recorded accesses.
func (t *Trace) Count() uint64 { return t.count.Load() }

// Digest returns an order-sensitive digest of the full access sequence; two
// traces with equal digests and counts are treated as identical sequences.
func (t *Trace) Digest() uint64 { return t.hash }

// Events returns the recorded raw-event prefix (up to the record limit).
func (t *Trace) Events() []Event { return t.events }

// Truncated reports whether accesses beyond the record limit occurred.
func (t *Trace) Truncated() bool { return t.count.Load() > uint64(len(t.events)) }

// Equal reports whether two traces describe the same access sequence.
func (t *Trace) Equal(o *Trace) bool {
	return t.count.Load() == o.count.Load() && t.hash == o.hash
}
