package sim

import "fmt"

// This file holds the batched transfer APIs. Each batched call performs the
// SAME per-cell accesses, in the SAME order, as the equivalent sequence of
// Get/Put/RequestDisk calls — the per-device trace and Stats are identical,
// which is what the access-pattern invariance tests pin. What changes is
// only the synchronisation cost: the region lock and the host trace lock
// are acquired once per batch instead of once per cell, and plaintext
// staging buffers are pooled, so the hot loops of the sort networks and the
// sequential scans stop serialising on the host.

// TransferBatch is the staging window of the chunked batch operations: how
// many cells transit T per lock acquisition. The window is DMA-style
// staging and is not charged against the device's M-tuple memory, extending
// the uncharged "+2" staging convention of §4.1 (algorithm-visible state is
// still bounded by Grant).
const TransferBatch = 64

// GetRange transfers cells [from, from+n) from H into T and decrypts them,
// exactly like n sequential Gets but under one region-lock acquisition.
func (t *Coprocessor) GetRange(id RegionID, from, n int64) ([][]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	cts, err := t.host.readRange(id, from, n, make([][]byte, 0, n))
	served := int64(len(cts))
	for i := int64(0); i < served; i++ {
		t.trace.Append(Event{Op: OpGet, Region: id, Index: from + i})
	}
	t.stats.Gets += uint64(served)
	if err != nil {
		return nil, err
	}
	pts := make([][]byte, n)
	for k, ct := range cts {
		pt, oerr := t.sealer.Open(ct)
		if oerr != nil {
			return nil, fmt.Errorf("sim: get %s[%d]: %w", t.host.RegionName(id), from+int64(k), oerr)
		}
		pts[k] = pt
	}
	return pts, nil
}

// ScanRange streams cells [from, from+n) through fn in TransferBatch-sized
// windows: per window one region-lock acquisition, plaintexts opened into a
// pooled buffer that fn must not retain. The traced access sequence and the
// Stats counts equal n sequential Gets.
func (t *Coprocessor) ScanRange(id RegionID, from, n int64, fn func(k int64, pt []byte) error) error {
	if n <= 0 {
		return nil
	}
	buf := getBuf()
	defer putBuf(buf)
	cts := make([][]byte, 0, min64(n, TransferBatch))
	for off := int64(0); off < n; off += TransferBatch {
		c := min64(TransferBatch, n-off)
		var err error
		cts, err = t.host.readRange(id, from+off, c, cts[:0])
		served := int64(len(cts))
		for i := int64(0); i < served; i++ {
			t.trace.Append(Event{Op: OpGet, Region: id, Index: from + off + i})
		}
		t.stats.Gets += uint64(served)
		if err != nil {
			return err
		}
		for k, ct := range cts {
			pt, oerr := t.sealer.OpenTo((*buf)[:0], ct)
			if oerr != nil {
				return fmt.Errorf("sim: get %s[%d]: %w", t.host.RegionName(id), from+off+int64(k), oerr)
			}
			*buf = pt[:0]
			if ferr := fn(off+int64(k), pt); ferr != nil {
				return ferr
			}
		}
	}
	return nil
}

// PutRange encrypts the plaintexts inside T and transfers them to cells
// [from, from+len(plaintexts)), exactly like sequential Puts but with one
// region-lock acquisition per TransferBatch window.
func (t *Coprocessor) PutRange(id RegionID, from int64, plaintexts [][]byte) error {
	n := int64(len(plaintexts))
	for off := int64(0); off < n; off += TransferBatch {
		c := min64(TransferBatch, n-off)
		if cap(t.sealScratch) < int(c) {
			t.sealScratch = make([][]byte, c)
		}
		cts := t.sealScratch[:c]
		for k := int64(0); k < c; k++ {
			cts[k] = t.sealer.Seal(plaintexts[off+k])
		}
		err := t.host.writeRange(id, from+off, cts)
		for k := range cts {
			cts[k] = nil // drop the references; the host retains the cells
		}
		if err != nil {
			return err
		}
		for i := int64(0); i < c; i++ {
			t.trace.Append(Event{Op: OpPut, Region: id, Index: from + off + i})
		}
		t.stats.Puts += uint64(c)
	}
	return nil
}

// GetBatchInto transfers the cells at the given (not necessarily
// contiguous) indices into T under one region-lock acquisition, opening
// each into dst[k][:0] so a caller that reuses dst across calls performs no
// steady-state allocations. It returns dst resized to len(indices). The
// traced sequence equals sequential Gets in indices order.
func (t *Coprocessor) GetBatchInto(dst [][]byte, id RegionID, indices []int64) ([][]byte, error) {
	for len(dst) < len(indices) {
		dst = append(dst, nil)
	}
	dst = dst[:len(indices)]
	cts, err := t.host.readBatch(id, indices, t.ctScratch[:0])
	t.ctScratch = cts
	served := len(cts)
	for i := 0; i < served; i++ {
		t.trace.Append(Event{Op: OpGet, Region: id, Index: indices[i]})
	}
	t.stats.Gets += uint64(served)
	if err != nil {
		return dst, err
	}
	for k, ct := range cts {
		pt, oerr := t.sealer.OpenTo(dst[k][:0], ct)
		if oerr != nil {
			return dst, fmt.Errorf("sim: get %s[%d]: %w", t.host.RegionName(id), indices[k], oerr)
		}
		dst[k] = pt
		cts[k] = nil
	}
	return dst, nil
}

// PutBatch encrypts the plaintexts inside T and writes them to the given
// indices under one region-lock acquisition. The traced sequence equals
// sequential Puts in indices order.
func (t *Coprocessor) PutBatch(id RegionID, indices []int64, plaintexts [][]byte) error {
	if len(indices) != len(plaintexts) {
		return fmt.Errorf("sim: put batch of %d cells with %d indices", len(plaintexts), len(indices))
	}
	n := len(indices)
	if n == 0 {
		return nil
	}
	if cap(t.sealScratch) < n {
		t.sealScratch = make([][]byte, n)
	}
	cts := t.sealScratch[:n]
	for k := range plaintexts {
		cts[k] = t.sealer.Seal(plaintexts[k])
	}
	err := t.host.writeBatch(id, indices, cts)
	for k := range cts {
		cts[k] = nil
	}
	if err != nil {
		return err
	}
	for _, idx := range indices {
		t.trace.Append(Event{Op: OpPut, Region: id, Index: idx})
	}
	t.stats.Puts += uint64(n)
	return nil
}

// TransformRange is a batched read-modify-write scan: for each k in [0, n)
// it gets src[srcFrom+k], passes the plaintext through fn, and puts fn's
// result at dst[dstFrom+k]. The traced sequence — get, put, get, put,
// interleaved per cell — and the Stats counts are identical to the
// sequential loop; the region locks are held once per TransferBatch window,
// so fn runs under them and must not access the host (counter charges like
// ChargePredicate are fine). fn may retain neither pt nor its return value
// past the call; both are re-sealed or recycled immediately.
//
// dst and src may be the same region (in-place rewrite, e.g. the shuffle
// tag/strip phases) or different ones (re-encrypting copy, e.g. filter
// fills); distinct regions are locked in RegionID order.
func (t *Coprocessor) TransformRange(dst RegionID, dstFrom int64, src RegionID, srcFrom, n int64,
	fn func(k int64, pt []byte) ([]byte, error)) error {
	if n <= 0 {
		return nil
	}
	buf := getBuf()
	defer putBuf(buf)
	for off := int64(0); off < n; off += TransferBatch {
		c := min64(TransferBatch, n-off)
		done, openOrFnErr, err := t.host.transformRange(dst, dstFrom+off, src, srcFrom+off, c,
			func(k int64, ct []byte) ([]byte, error) {
				pt, oerr := t.sealer.OpenTo((*buf)[:0], ct)
				if oerr != nil {
					return nil, fmt.Errorf("sim: get %s[%d]: %w", t.host.RegionName(src), srcFrom+off+k, oerr)
				}
				*buf = pt[:0]
				out, ferr := fn(off+k, pt)
				if ferr != nil {
					return nil, ferr
				}
				return t.sealer.Seal(out), nil
			})
		for k := int64(0); k < done; k++ {
			t.trace.Append(Event{Op: OpGet, Region: src, Index: srcFrom + off + k})
			t.trace.Append(Event{Op: OpPut, Region: dst, Index: dstFrom + off + k})
		}
		t.stats.Gets += uint64(done)
		t.stats.Puts += uint64(done)
		if openOrFnErr {
			// The failing cell's get succeeded at the host before the open or
			// fn failed, matching the sequential Get-then-fail accounting.
			t.trace.Append(Event{Op: OpGet, Region: src, Index: srcFrom + off + done})
			t.stats.Gets++
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
