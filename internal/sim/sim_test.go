package sim

import (
	"errors"
	"strings"
	"testing"

	"ppj/internal/relation"
)

func newTestPair(t *testing.T, mem int) (*Host, *Coprocessor) {
	t.Helper()
	h := NewHost(1 << 16)
	cop, err := NewCoprocessor(h, Config{Memory: mem, Sealer: PlainSealer{}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return h, cop
}

func TestTraceDigestOrderSensitive(t *testing.T) {
	a, b := NewTrace(0), NewTrace(0)
	e1 := Event{Op: OpGet, Region: 1, Index: 2}
	e2 := Event{Op: OpPut, Region: 1, Index: 2}
	a.Append(e1)
	a.Append(e2)
	b.Append(e2)
	b.Append(e1)
	if a.Equal(b) {
		t.Fatal("order-swapped traces compare equal")
	}
	c := NewTrace(0)
	c.Append(e1)
	c.Append(e2)
	if !a.Equal(c) {
		t.Fatal("identical traces compare unequal")
	}
}

func TestTraceRecordLimit(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		tr.Append(Event{Op: OpGet, Region: 0, Index: int64(i)})
	}
	if len(tr.Events()) != 2 || tr.Count() != 5 || !tr.Truncated() {
		t.Fatalf("record limit broken: events=%d count=%d truncated=%v",
			len(tr.Events()), tr.Count(), tr.Truncated())
	}
}

func TestEventString(t *testing.T) {
	e := Event{Op: OpGet, Region: 3, Index: 9}
	if got := e.String(); !strings.Contains(got, "get") || !strings.Contains(got, "[9]") {
		t.Fatalf("Event.String = %q", got)
	}
	if OpPut.String() != "put" || OpDisk.String() != "disk" {
		t.Fatal("Op.String wrong")
	}
}

func TestHostRegions(t *testing.T) {
	h := NewHost(0)
	id := h.MustCreateRegion("A", 3)
	if h.RegionLen(id) != 3 || h.RegionName(id) != "A" {
		t.Fatal("region metadata wrong")
	}
	if _, err := h.CreateRegion("A", 1); err == nil {
		t.Fatal("duplicate region name accepted")
	}
	h.Store(id, 10, []byte{1}) // grows
	if h.RegionLen(id) != 11 {
		t.Fatalf("grow failed: len=%d", h.RegionLen(id))
	}
	if h.Inspect(id, 10) == nil || h.Inspect(id, 99) != nil {
		t.Fatal("Inspect wrong")
	}
}

func TestGetPutRoundTripAndTrace(t *testing.T) {
	h, cop := newTestPair(t, 10)
	id := h.MustCreateRegion("r", 2)
	if err := cop.Put(id, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := cop.Get(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("round trip got %q", got)
	}
	ev := h.Trace().Events()
	if len(ev) != 2 || ev[0].Op != OpPut || ev[1].Op != OpGet {
		t.Fatalf("trace = %v", ev)
	}
	st := cop.Stats()
	if st.Gets != 1 || st.Puts != 1 || st.Transfers() != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetErrors(t *testing.T) {
	h, cop := newTestPair(t, 10)
	id := h.MustCreateRegion("r", 2)
	if _, err := cop.Get(id, 5); err == nil {
		t.Fatal("out of range get accepted")
	}
	if _, err := cop.Get(id, 0); err == nil {
		t.Fatal("get of unwritten cell accepted")
	}
}

func TestTamperDetection(t *testing.T) {
	h := NewHost(0)
	sealer, err := NewRandomOCBSealer()
	if err != nil {
		t.Fatal(err)
	}
	cop, err := NewCoprocessor(h, Config{Memory: 4, Sealer: sealer, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	id := h.MustCreateRegion("r", 1)
	if err := cop.Put(id, 0, []byte("secret tuple....")); err != nil {
		t.Fatal(err)
	}
	ct := append([]byte(nil), h.Inspect(id, 0)...)
	ct[len(ct)-1] ^= 0x01
	h.Tamper(id, 0, ct)
	_, err = cop.Get(id, 0)
	if !errors.Is(err, ErrTamper) {
		t.Fatalf("tampered get error = %v, want ErrTamper", err)
	}
}

func TestCiphertextsIndistinguishable(t *testing.T) {
	// Two puts of the same plaintext must look different on the host
	// (semantic security; decoys rely on this).
	h := NewHost(0)
	sealer, err := NewRandomOCBSealer()
	if err != nil {
		t.Fatal(err)
	}
	cop, err := NewCoprocessor(h, Config{Sealer: sealer})
	if err != nil {
		t.Fatal(err)
	}
	id := h.MustCreateRegion("r", 2)
	pt := []byte("identical plaintext")
	if err := cop.Put(id, 0, pt); err != nil {
		t.Fatal(err)
	}
	if err := cop.Put(id, 1, pt); err != nil {
		t.Fatal(err)
	}
	if string(h.Inspect(id, 0)) == string(h.Inspect(id, 1)) {
		t.Fatal("equal plaintexts produced equal ciphertexts")
	}
}

func TestMemoryGrant(t *testing.T) {
	_, cop := newTestPair(t, 8)
	rel1, err := cop.Grant(5)
	if err != nil {
		t.Fatal(err)
	}
	if cop.MemoryFree() != 3 {
		t.Fatalf("free = %d", cop.MemoryFree())
	}
	if _, err := cop.Grant(4); err == nil {
		t.Fatal("over-grant accepted")
	}
	rel1()
	rel1() // double release must be harmless
	if cop.MemoryFree() != 8 {
		t.Fatalf("free after release = %d", cop.MemoryFree())
	}
	if _, err := cop.Grant(-1); err == nil {
		t.Fatal("negative grant accepted")
	}
}

func TestRequestDisk(t *testing.T) {
	h, cop := newTestPair(t, 4)
	id := h.MustCreateRegion("out", 3)
	for i := int64(0); i < 3; i++ {
		if err := cop.Put(id, i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cop.RequestDisk(id, 0, 3); err != nil {
		t.Fatal(err)
	}
	if h.DiskWrites() != 3 || cop.Stats().DiskRequests != 3 {
		t.Fatal("disk accounting wrong")
	}
	if err := cop.RequestDisk(id, 2, 5); err == nil {
		t.Fatal("out of range disk request accepted")
	}
}

func TestLoadTableAndGetTuple(t *testing.T) {
	h, cop := newTestPair(t, 4)
	rel := relation.GenKeyed(relation.NewRand(1), 10, 5)
	tab, err := LoadTable(h, cop.Sealer(), "A", rel)
	if err != nil {
		t.Fatal(err)
	}
	if tab.N != 10 {
		t.Fatalf("table N = %d", tab.N)
	}
	// Loading must not appear in the trace: providers upload out of band.
	if h.Trace().Count() != 0 {
		t.Fatal("LoadTable polluted the trace")
	}
	for i := int64(0); i < tab.N; i++ {
		tup, err := cop.GetTuple(tab, i)
		if err != nil {
			t.Fatal(err)
		}
		if tup[0].I != rel.Rows[i][0].I || tup[1].I != rel.Rows[i][1].I {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestPutTuple(t *testing.T) {
	h, cop := newTestPair(t, 4)
	s := relation.KeyedSchema()
	tab := Table{Region: h.MustCreateRegion("w", 1), N: 1, Schema: s}
	in := relation.Tuple{relation.IntValue(42), relation.IntValue(-1)}
	if err := cop.PutTuple(tab, 0, in); err != nil {
		t.Fatal(err)
	}
	out, err := cop.GetTuple(tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != 42 || out[1].I != -1 {
		t.Fatalf("PutTuple round trip: %+v", out)
	}
	bad := relation.Tuple{relation.IntValue(1)}
	if err := cop.PutTuple(tab, 0, bad); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestCartesianSequentialScan(t *testing.T) {
	h, cop := newTestPair(t, 4)
	a := relation.GenKeyed(relation.NewRand(1), 4, 100)
	b := relation.GenKeyed(relation.NewRand(2), 6, 100)
	tabA, _ := LoadTable(h, cop.Sealer(), "A", a)
	tabB, _ := LoadTable(h, cop.Sealer(), "B", b)
	cart, err := NewCartesian(cop, []Table{tabA, tabB})
	if err != nil {
		t.Fatal(err)
	}
	if cart.Size() != 24 {
		t.Fatalf("Size = %d", cart.Size())
	}
	for i := int64(0); i < cart.Size(); i++ {
		row, err := cart.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		wantA, wantB := a.Rows[i/6], b.Rows[i%6]
		if row[0][0].I != wantA[0].I || row[1][0].I != wantB[0].I {
			t.Fatalf("iTuple %d mismatch", i)
		}
	}
	st := cop.Stats()
	if st.LogicalReads != 24 {
		t.Fatalf("logical reads = %d, want 24", st.LogicalReads)
	}
	// Sequential scan: |A| + |A||B| underlying gets.
	if st.Gets != 4+24 {
		t.Fatalf("underlying gets = %d, want 28", st.Gets)
	}
}

func TestCartesianCoordsRoundTrip(t *testing.T) {
	h, cop := newTestPair(t, 4)
	mk := func(name string, n int) Table {
		rel := relation.GenKeyed(relation.NewRand(uint64(n)), n, 10)
		tab, err := LoadTable(h, cop.Sealer(), name, rel)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	cart, err := NewCartesian(cop, []Table{mk("X1", 3), mk("X2", 4), mk("X3", 5)})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < cart.Size(); i++ {
		if got := cart.Logical(cart.Coords(i)); got != i {
			t.Fatalf("Coords/Logical round trip: %d -> %v -> %d", i, cart.Coords(i), got)
		}
	}
}

func TestCartesianValidation(t *testing.T) {
	h, cop := newTestPair(t, 4)
	if _, err := NewCartesian(cop, nil); err == nil {
		t.Fatal("empty table list accepted")
	}
	empty := Table{Region: h.MustCreateRegion("e", 0), N: 0, Schema: relation.KeyedSchema()}
	if _, err := NewCartesian(cop, []Table{empty}); err == nil {
		t.Fatal("empty table accepted")
	}
	rel := relation.GenKeyed(relation.NewRand(1), 2, 10)
	tab, _ := LoadTable(h, cop.Sealer(), "X", rel)
	cart, _ := NewCartesian(cop, []Table{tab})
	if _, err := cart.Read(5); err == nil {
		t.Fatal("out of range logical read accepted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Gets: 1, Puts: 2, LogicalReads: 3, Comparisons: 4, PredEvals: 5, DiskRequests: 6}
	b := a
	a.Add(b)
	if a.Gets != 2 || a.Puts != 4 || a.LogicalReads != 6 || a.Comparisons != 8 ||
		a.PredEvals != 10 || a.DiskRequests != 12 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestCoprocessorSeedDeterminism(t *testing.T) {
	mk := func(seed uint64) uint64 {
		h := NewHost(0)
		cop, err := NewCoprocessor(h, Config{Sealer: PlainSealer{}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return cop.Rand().Uint64()
	}
	if mk(5) != mk(5) {
		t.Fatal("same seed, different randomness")
	}
	if mk(5) == mk(6) {
		t.Fatal("different seeds, same randomness")
	}
}

func TestFreshRegionUniqueNames(t *testing.T) {
	h := NewHost(0)
	a := h.FreshRegion("scratch", 2)
	b := h.FreshRegion("scratch", 2)
	c := h.FreshRegion("scratch", 2)
	if a == b || b == c {
		t.Fatal("FreshRegion returned duplicate ids")
	}
	names := map[string]bool{}
	for _, id := range []RegionID{a, b, c} {
		name := h.RegionName(id)
		if names[name] {
			t.Fatalf("duplicate region name %q", name)
		}
		names[name] = true
	}
}

func TestRequestCopyOut(t *testing.T) {
	h, cop := newTestPair(t, 8)
	src := h.MustCreateRegion("src", 4)
	dst := h.MustCreateRegion("dst", 0)
	for i := int64(0); i < 4; i++ {
		if err := cop.Put(src, i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := cop.Stats().Transfers()
	if err := cop.RequestCopyOut(dst, 0, src, 1, 3); err != nil {
		t.Fatal(err)
	}
	// Host-side: no transfers charged, but traced as disk writes.
	if cop.Stats().Transfers() != before {
		t.Fatal("copy out charged transfers")
	}
	if cop.Stats().DiskRequests != 3 {
		t.Fatalf("disk requests = %d", cop.Stats().DiskRequests)
	}
	for i := int64(0); i < 3; i++ {
		pt, err := cop.Get(dst, i)
		if err != nil {
			t.Fatal(err)
		}
		if pt[0] != byte(i+1) {
			t.Fatalf("dst[%d] = %d", i, pt[0])
		}
	}
	if err := cop.RequestCopyOut(dst, 0, src, 2, 5); err == nil {
		t.Fatal("out-of-range copy accepted")
	}
}

func TestCartesianRandomAccessCounting(t *testing.T) {
	// Random-order reads re-fetch each table whose coordinate changed; a
	// fully alternating pattern costs 2 gets per logical read after the
	// first.
	h, cop := newTestPair(t, 4)
	a := relation.GenKeyed(relation.NewRand(1), 3, 10)
	b := relation.GenKeyed(relation.NewRand(2), 3, 10)
	tabA, _ := LoadTable(h, cop.Sealer(), "A", a)
	tabB, _ := LoadTable(h, cop.Sealer(), "B", b)
	cart, err := NewCartesian(cop, []Table{tabA, tabB})
	if err != nil {
		t.Fatal(err)
	}
	cop.ResetStats()
	for _, idx := range []int64{0, 4, 8, 0, 4} { // diagonal hops change both coords
		if _, err := cart.Read(idx); err != nil {
			t.Fatal(err)
		}
	}
	st := cop.Stats()
	if st.LogicalReads != 5 {
		t.Fatalf("logical reads = %d", st.LogicalReads)
	}
	if st.Gets != 10 { // 2 per hop
		t.Fatalf("gets = %d, want 10", st.Gets)
	}
}
