#!/bin/sh
# bench.sh — run the full benchmark suite once and record the trajectory
# artefact (BENCH_<n>.json). Each entry maps the benchmark name to its
# ns/op, allocs/op and any custom metrics it reports (most benchmarks in
# this repo report "transfers", the paper's cost unit: for the Parallel*
# benchmarks it is the busiest device's measured transfer count, i.e. the
# critical path that shrinks as P grows).
#
# Usage: scripts/bench.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_3.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -bench=. -benchtime=1x -benchmem . ./internal/server | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    line = ""
    # $2 is the iteration count; value/unit pairs start at $3.
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        key = ""
        if (unit == "ns/op")      key = "ns_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else if (unit == "B/op")  key = "bytes_per_op"
        else if (unit ~ /^[A-Za-z]/) { key = unit; gsub(/[^A-Za-z0-9_]/, "_", key) }
        if (key != "")
            line = line (line == "" ? "" : ", ") "\"" key "\": " val
    }
    if (line != "") rows[++n] = "  \"" name "\": {" line "}"
}
END {
    print "{"
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "}"
}' "$tmp" > "$out"

echo "wrote $out"
