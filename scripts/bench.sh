#!/bin/sh
# bench.sh — run the full benchmark suite once and record the trajectory
# artefact (BENCH_<n>.json). Each entry maps the benchmark name to its
# ns/op, allocs/op and any custom metrics it reports (most benchmarks in
# this repo report "transfers", the paper's cost unit: for the Parallel*
# benchmarks it is the busiest device's measured transfer count, i.e. the
# critical path that shrinks as P grows).
#
# After the go benchmarks, the sustained-load driver (cmd/ppjload) runs a
# multi-shard fleet under PPJ_LOAD_CONTRACTS contracts (default 1000) and
# merges its latency/throughput report into the artefact under
# "SustainedLoad". Finally a trajectory table compares the key metrics
# across every BENCH_*.json present, so a regression against an earlier
# PR's artefact is visible at a glance.
#
# Usage: scripts/bench.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_10.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The full BenchmarkJoinScaling sweep (n=1k and n=4k) only runs with this
# set; without it the benchmark stays smoke-sized for CI.
PPJ_BENCH_FULL=1 go test -bench=. -benchtime=1x -benchmem . ./internal/server | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    line = ""
    # $2 is the iteration count; value/unit pairs start at $3.
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        key = ""
        if (unit == "ns/op")      key = "ns_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else if (unit == "B/op")  key = "bytes_per_op"
        else if (unit ~ /^[A-Za-z]/) { key = unit; gsub(/[^A-Za-z0-9_]/, "_", key) }
        if (key != "")
            line = line (line == "" ? "" : ", ") "\"" key "\": " val
    }
    if (line != "") rows[++n] = "  \"" name "\": {" line "}"
}
END {
    print "{"
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "}"
}' "$tmp" > "$out"

echo "wrote $out"

# Sustained load: a 2-shard fleet under tenant-striped contract pressure.
# The report (p50/p95/p99 latency, throughput, spills, refusals) merges
# into $out under "SustainedLoad".
go run ./cmd/ppjload \
    -shards 2 -tenants 8 \
    -contracts "${PPJ_LOAD_CONTRACTS:-1000}" \
    -max-duration "${PPJ_LOAD_MAX_DURATION:-60s}" \
    -out "$out"

# get FILE BENCH KEY — pull one numeric metric off a single-line JSON
# entry; empty when the artefact predates the benchmark or the key.
get() {
    awk -v bench="$2" -v key="$3" '
        index($0, "\"" bench "\"") {
            if (match($0, "\"" key "\":[ ]*[0-9.e+-]+")) {
                v = substr($0, RSTART, RLENGTH)
                sub(/^.*:[ ]*/, "", v)
                print v
                exit
            }
        }' "$1"
}

# Trajectory table: key metrics of every artefact recorded so far.
# Missing cells (older PRs predate the metric) print as "-".
echo ""
echo "benchmark trajectory:"
{
    printf '%s %s %s %s %s %s %s %s\n' \
        artefact fig4_ns_op alg5_transfers alg7_transfers p50_ms p95_ms p99_ms joins_per_s
    for f in $(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n); do
        [ -f "$f" ] || continue
        printf '%s %s %s %s %s %s %s %s\n' "$f" \
            "$(get "$f" BenchmarkFig4_1 ns_per_op):" \
            "$(get "$f" "BenchmarkJoinScaling/alg5/n=4096" transfers):" \
            "$(get "$f" "BenchmarkJoinScaling/alg7/n=4096" transfers):" \
            "$(get "$f" SustainedLoad p50_ms):" \
            "$(get "$f" SustainedLoad p95_ms):" \
            "$(get "$f" SustainedLoad p99_ms):" \
            "$(get "$f" SustainedLoad throughput_per_sec):"
    done
} | awk '{
    # Empty metrics collapsed fields above; the ":" suffix keeps each cell
    # non-empty so the column count is stable. Strip it and dash the blanks.
    for (i = 2; i <= 8; i++) { sub(/:$/, "", $i); if ($i == "") $i = "-" }
    printf "%-14s %12s %14s %14s %9s %9s %9s %11s\n", $1, $2, $3, $4, $5, $6, $7, $8
}'

# Acceptance gate for the sort-based join: at n=4k its measured transfers
# must come in under 25% of Algorithm 5's on the same matched-keys workload.
# (Measured-vs-model agreement needs no gate here: the benchmark itself
# fails unless measured transfers equal the cost model exactly.)
t7=$(get "$out" "BenchmarkJoinScaling/alg7/n=4096" transfers)
t5=$(get "$out" "BenchmarkJoinScaling/alg5/n=4096" transfers)
if [ -n "$t7" ] && [ -n "$t5" ]; then
    awk -v a="$t7" -v b="$t5" 'BEGIN {
        ratio = a / b
        printf "alg7/alg5 transfers at n=4k: %.3f (gate: < 0.25)\n", ratio
        exit (ratio < 0.25) ? 0 : 1
    }'
fi
