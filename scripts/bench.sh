#!/bin/sh
# bench.sh — run the full benchmark suite once and record the trajectory
# artefact (BENCH_<n>.json). Each entry maps the benchmark name to its
# ns/op, allocs/op and any custom metrics it reports (most benchmarks in
# this repo report "transfers", the paper's cost unit: for the Parallel*
# benchmarks it is the busiest device's measured transfer count, i.e. the
# critical path that shrinks as P grows).
#
# Usage: scripts/bench.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_8.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The full BenchmarkJoinScaling sweep (n=1k and n=4k) only runs with this
# set; without it the benchmark stays smoke-sized for CI.
PPJ_BENCH_FULL=1 go test -bench=. -benchtime=1x -benchmem . ./internal/server | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    line = ""
    # $2 is the iteration count; value/unit pairs start at $3.
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        key = ""
        if (unit == "ns/op")      key = "ns_per_op"
        else if (unit == "allocs/op") key = "allocs_per_op"
        else if (unit == "B/op")  key = "bytes_per_op"
        else if (unit ~ /^[A-Za-z]/) { key = unit; gsub(/[^A-Za-z0-9_]/, "_", key) }
        if (key != "")
            line = line (line == "" ? "" : ", ") "\"" key "\": " val
    }
    if (line != "") rows[++n] = "  \"" name "\": {" line "}"
}
END {
    print "{"
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "}"
}' "$tmp" > "$out"

echo "wrote $out"

# Acceptance gate for the sort-based join: at n=4k its measured transfers
# must come in under 25% of Algorithm 5's on the same matched-keys workload.
# (Measured-vs-model agreement needs no gate here: the benchmark itself
# fails unless measured transfers equal the cost model exactly.)
t7=$(sed -n 's/.*"BenchmarkJoinScaling\/alg7\/n=4096": {.*"transfers": \([0-9.e+]*\).*/\1/p' "$out")
t5=$(sed -n 's/.*"BenchmarkJoinScaling\/alg5\/n=4096": {.*"transfers": \([0-9.e+]*\).*/\1/p' "$out")
if [ -n "$t7" ] && [ -n "$t5" ]; then
    awk -v a="$t7" -v b="$t5" 'BEGIN {
        ratio = a / b
        printf "alg7/alg5 transfers at n=4k: %.3f (gate: < 0.25)\n", ratio
        exit (ratio < 0.25) ? 0 : 1
    }'
fi
