package ppj_test

import (
	"fmt"
	"log"

	"ppj"
)

// ExampleEngine demonstrates the core flow: load two encrypted relations,
// join them privately, decode as the recipient.
func ExampleEngine() {
	relA := ppj.NewRelation(ppj.KeyedSchema())
	relB := ppj.NewRelation(ppj.KeyedSchema())
	for i := int64(0); i < 4; i++ {
		relA.MustAppend(ppj.Tuple{ppj.IntValue(i), ppj.IntValue(100 + i)})
		relB.MustAppend(ppj.Tuple{ppj.IntValue(i * 2), ppj.IntValue(200 + i)})
	}

	eng, err := ppj.NewEngine(ppj.EngineConfig{Memory: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ta, _ := eng.Load("A", relA)
	tb, _ := eng.Load("B", relB)
	pred, _ := ppj.Equijoin(relA.Schema, "key", relB.Schema, "key")
	res, err := eng.Join(ppj.Alg5, []ppj.TableRef{ta, tb}, ppj.Pairwise(pred), ppj.JoinOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rows, _ := eng.Decode(res)
	fmt.Println("join size:", rows.Len())
	// Output: join size: 2
}

// ExamplePlanQuery shows the planner picking an algorithm from the paper's
// performance analysis without running the join.
func ExamplePlanQuery() {
	relA := ppj.GenKeyed(ppj.NewRand(1), 10, 5)
	relB := ppj.GenKeyed(ppj.NewRand(2), 12, 5)
	pred, _ := ppj.Equijoin(relA.Schema, "key", relB.Schema, "key")
	plan, err := ppj.PlanQuery(ppj.Query{Predicate: pred, Mode: ppj.OutputExact},
		[]*ppj.Relation{relA, relB}, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algorithm:", plan.Algorithm)
	// Output: algorithm: 5
}

// ExampleEngine_Aggregate computes a statistic over a join without ever
// materialising the joined rows.
func ExampleEngine_Aggregate() {
	relA := ppj.NewRelation(ppj.KeyedSchema())
	relB := ppj.NewRelation(ppj.KeyedSchema())
	for i := int64(0); i < 5; i++ {
		relA.MustAppend(ppj.Tuple{ppj.IntValue(i), ppj.IntValue(10 * i)})
		relB.MustAppend(ppj.Tuple{ppj.IntValue(i), ppj.IntValue(0)})
	}
	eng, _ := ppj.NewEngine(ppj.EngineConfig{Memory: 4, Seed: 1})
	ta, _ := eng.Load("A", relA)
	tb, _ := eng.Load("B", relB)
	pred, _ := ppj.Equijoin(relA.Schema, "key", relB.Schema, "key")
	res, err := eng.Aggregate([]ppj.TableRef{ta, tb}, ppj.Pairwise(pred),
		ppj.AggSpec{Kind: ppj.AggSum, Table: 0, Attr: "payload"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SUM:", res.Value)
	// Output: SUM: 100
}

// ExampleCostAlg5 evaluates the paper's closed-form cost for Algorithm 5 at
// Table 5.2's setting 1.
func ExampleCostAlg5() {
	fmt.Printf("%.3g\n", ppj.CostAlg5(640000, 6400, 64))
	// Output: 6.4e+07
}
