package ppj

import (
	"ppj/internal/core"
	"ppj/internal/query"
	"ppj/internal/relation"
)

// This file re-exports the query planner, which turns the paper's §4.6 and
// §5.3.4 performance analysis into an automatic algorithm choice.

// Query describes a declarative privacy preserving join request.
type Query = query.Query

// QueryPlan is the planner's decision.
type QueryPlan = query.Plan

// Planner picks and runs the cheapest admissible algorithm.
type Planner = query.Planner

// Output modes.
const (
	// OutputPaddedN allows Chapter 4's N·|A| padded output.
	OutputPaddedN = query.PaddedN
	// OutputExact requires Chapter 5's exact-S output.
	OutputExact = query.Exact
)

// PlanQuery picks the cheapest algorithm for the query on a device with
// memory M, without running it.
func PlanQuery(q Query, rels []*Relation, memory int64) (QueryPlan, error) {
	return query.Planner{Memory: memory}.Plan(q, rels)
}

// RunQuery plans and executes a row-producing query on a fresh engine.
func RunQuery(q Query, rels []*Relation, memory int64, seed uint64) (*Relation, QueryPlan, error) {
	return query.Planner{Memory: memory}.Execute(q, rels, seed)
}

// RunAggregateQuery plans and executes an aggregate query.
func RunAggregateQuery(q Query, rels []*Relation, memory int64, seed uint64) (core.AggResult, QueryPlan, error) {
	return query.Planner{Memory: memory}.ExecuteAggregate(q, rels, seed)
}

// CountMultiMatches computes the exact join size S over the cartesian
// product (the screening statistic of Algorithm 6).
func CountMultiMatches(rels []*Relation, pred MultiPredicate) int64 {
	return relation.CountMultiMatches(rels, pred)
}
