package ppj

import "ppj/internal/relation"

// This file re-exports the synthetic workload generators modelled on the
// paper's motivating applications (Chapter 1): watch lists vs. passenger
// manifests, and gene-bank sequences vs. patient records.

// Rand is the deterministic random source consumed by the generators.
type Rand = relation.Rand

// NewRand returns a deterministic generator for a seed.
func NewRand(seed uint64) Rand { return relation.NewRand(seed) }

// PersonSchema is the watch-list schema: (id, name, dob, passport).
func PersonSchema() *Schema { return relation.PersonSchema() }

// GenPersons synthesises n person records with ids uniform in [0, idSpace).
func GenPersons(rng Rand, n int, idSpace int64) *Relation {
	return relation.GenPersons(rng, n, idSpace)
}

// SequenceSchema is the genomics schema: (seqid, kmers set[k]).
func SequenceSchema(k int) *Schema { return relation.SequenceSchema(k) }

// GenSequences synthesises n k-mer sets of cardinality card over a
// vocabulary of vocab shingles.
func GenSequences(rng Rand, n, card, capacity int, vocab uint32) *Relation {
	return relation.GenSequences(rng, n, card, capacity, vocab)
}

// KeyedSchema is the minimal (key, payload) schema.
func KeyedSchema() *Schema { return relation.KeyedSchema() }

// GenKeyed synthesises n rows with keys uniform in [0, keySpace).
func GenKeyed(rng Rand, n int, keySpace int64) *Relation {
	return relation.GenKeyed(rng, n, keySpace)
}

// GenKeyedZipf synthesises n rows with Zipf(s)-distributed keys.
func GenKeyedZipf(rng Rand, n int, keySpace int64, s float64) *Relation {
	return relation.GenKeyedZipf(rng, n, keySpace, s)
}

// Value constructors.
var (
	IntValue    = relation.IntValue
	FloatValue  = relation.FloatValue
	StringValue = relation.StringValue
	BytesValue  = relation.BytesValue
	SetValue    = relation.SetValue
)

// PredicateFunc adapts an arbitrary function into a 2-way join predicate,
// the paper's "arbitrary predicates" in their most general form.
type PredicateFunc = relation.PredicateFunc

// MultiPredicateFunc adapts an arbitrary function into a J-way predicate.
type MultiPredicateFunc = relation.MultiPredicateFunc

// ReadCSV parses a CSV stream (header row, inferred column types) into a
// relation.
var ReadCSV = relation.ReadCSV

// WriteCSV renders a relation as CSV with a header row.
var WriteCSV = relation.WriteCSV
