package ppj

// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation, plus measured-execution and substrate benchmarks.
// The paper's §4.6/§5.4 numbers are closed-form; the BenchmarkFig*/
// BenchmarkTable* functions time their regeneration and attach the headline
// values as metrics, while the BenchmarkMeasured* functions run the actual
// algorithms in the simulator and report measured transfers. `go test
// -bench=. -benchmem` therefore regenerates every artefact; cmd/ppjbench
// renders the same series as tables.

import (
	"fmt"
	"math"
	"os"
	"testing"

	"ppj/internal/core"
	"ppj/internal/costmodel"
	"ppj/internal/mlfsr"
	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
	"ppj/internal/smc"
)

// --- Figures ---

// BenchmarkFig4_1 regenerates the Figure 4.1 performance-relationship map.
func BenchmarkFig4_1(b *testing.B) {
	const bSize = 10_000
	var alg1Wins int
	for i := 0; i < b.N; i++ {
		alg1Wins = 0
		for _, alpha := range []float64{1.0 / bSize, 0.001, 0.01, 0.1, 1} {
			for gamma := int64(1); gamma <= 64; gamma *= 2 {
				if costmodel.Winner(bSize, alpha, gamma, false) == "Alg1" {
					alg1Wins++
				}
			}
		}
	}
	b.ReportMetric(float64(alg1Wins), "alg1-region-cells")
}

// BenchmarkSFEComparison regenerates the §4.6.5 SFE-vs-Algorithm-1 series.
func BenchmarkSFEComparison(b *testing.B) {
	p := costmodel.DefaultSFEParams()
	var ratio float64
	for i := 0; i < b.N; i++ {
		sfe := costmodel.SFECostBits(p, 10_000, 10, 64)
		alg1 := costmodel.Alg1CostBits(10_000, 10_000, 10, 64)
		ratio = sfe / alg1
	}
	b.ReportMetric(ratio, "sfe/alg1")
}

// BenchmarkFig5_1 regenerates Figure 5.1 (Algorithm 5 cost vs M).
func BenchmarkFig5_1(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for m := int64(1); m <= 6400; m *= 2 {
			last = costmodel.Alg5Cost(640_000, 6_400, m)
		}
	}
	b.ReportMetric(last, "cost-at-M4096")
}

// BenchmarkFig5_2 regenerates Figure 5.2 (Algorithm 6 cost vs epsilon,
// setting 1). Each point solves the n* optimisation (Eqn 5.6).
func BenchmarkFig5_2(b *testing.B) {
	var at20 float64
	for i := 0; i < b.N; i++ {
		for exp := -60; exp <= -5; exp += 5 {
			c := costmodel.Alg6Cost(640_000, 6_400, 64, math.Pow(10, float64(exp))).Total
			if exp == -20 {
				at20 = c
			}
		}
	}
	b.ReportMetric(at20, "cost-at-1e-20")
}

// BenchmarkFig5_3 regenerates Figure 5.3 (Algorithm 6 cost vs M).
func BenchmarkFig5_3(b *testing.B) {
	var at64 float64
	for i := 0; i < b.N; i++ {
		for m := int64(16); m <= 6400; m *= 2 {
			c := costmodel.Alg6Cost(640_000, 6_400, m, 1e-20).Total
			if m == 64 {
				at64 = c
			}
		}
	}
	b.ReportMetric(at64, "cost-at-M64")
}

// BenchmarkFig5_4 regenerates Figure 5.4 (Algorithm 6 vs epsilon, all
// settings).
func BenchmarkFig5_4(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		sum = 0
		for _, st := range costmodel.Settings() {
			for exp := -60; exp <= -5; exp += 10 {
				sum += costmodel.Alg6Cost(st.L, st.S, st.M, math.Pow(10, float64(exp))).Total
			}
		}
	}
	b.ReportMetric(sum, "series-sum")
}

// --- Tables ---

// BenchmarkTable5_1 regenerates Table 5.1 (privacy level vs cost formulas).
func BenchmarkTable5_1(b *testing.B) {
	st := costmodel.Settings()[0]
	var a4, a5, a6 float64
	for i := 0; i < b.N; i++ {
		a4 = costmodel.Alg4Cost(st.L, st.S)
		a5 = costmodel.Alg5Cost(st.L, st.S, st.M)
		a6 = costmodel.Alg6Cost(st.L, st.S, st.M, 1e-20).Total
	}
	b.ReportMetric(a4, "alg4")
	b.ReportMetric(a5, "alg5")
	b.ReportMetric(a6, "alg6")
}

// BenchmarkTable5_2 regenerates Table 5.2 (settings; trivially cheap, kept
// for completeness of the per-artefact index).
func BenchmarkTable5_2(b *testing.B) {
	var l int64
	for i := 0; i < b.N; i++ {
		for _, st := range costmodel.Settings() {
			l += st.L
		}
	}
	b.ReportMetric(float64(l/int64(3*b.N)), "mean-L")
}

// BenchmarkTable5_3 regenerates Table 5.3 (SMC and Algorithms 4/5/6 under
// all settings, both epsilon levels, plus the reduction row).
func BenchmarkTable5_3(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		for _, st := range costmodel.Settings() {
			_ = costmodel.SMCCost(costmodel.DefaultSMCParams(), st.L, st.S)
			_ = costmodel.Alg4Cost(st.L, st.S)
			a5 := costmodel.Alg5Cost(st.L, st.S, st.M)
			a6 := costmodel.Alg6Cost(st.L, st.S, st.M, 1e-20).Total
			_ = costmodel.Alg6Cost(st.L, st.S, st.M, 1e-10).Total
			red = 100 * (1 - a6/a5)
		}
	}
	b.ReportMetric(red, "setting3-reduction-%")
}

// --- Measured executions (simulator, reduced scale) ---

// measuredCh4 runs one Chapter 4 algorithm over a fixed workload.
func measuredCh4(b *testing.B, run func(t *sim.Coprocessor, a, bb sim.Table, eq *relation.Equi) (core.Result, error)) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(7), 32, 64, 4)
	eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		b.Fatal(err)
	}
	var transfers uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 2, Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		tabA, err := sim.LoadTable(h, cop.Sealer(), "A", relA)
		if err != nil {
			b.Fatal(err)
		}
		tabB, err := sim.LoadTable(h, cop.Sealer(), "B", relB)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := run(cop, tabA, tabB, eq)
		if err != nil {
			b.Fatal(err)
		}
		transfers = res.Stats.Transfers()
	}
	b.ReportMetric(float64(transfers), "transfers")
}

// BenchmarkMeasuredAlg1 executes Algorithm 1 (|A|=32, |B|=64, N=4).
func BenchmarkMeasuredAlg1(b *testing.B) {
	measuredCh4(b, func(t *sim.Coprocessor, a, bb sim.Table, eq *relation.Equi) (core.Result, error) {
		return core.Join1(t, a, bb, eq, 4)
	})
}

// BenchmarkMeasuredAlg2 executes Algorithm 2 (same workload, M=2, γ=2).
func BenchmarkMeasuredAlg2(b *testing.B) {
	measuredCh4(b, func(t *sim.Coprocessor, a, bb sim.Table, eq *relation.Equi) (core.Result, error) {
		return core.Join2(t, a, bb, eq, 4, 0)
	})
}

// BenchmarkMeasuredAlg3 executes Algorithm 3 (same workload).
func BenchmarkMeasuredAlg3(b *testing.B) {
	measuredCh4(b, func(t *sim.Coprocessor, a, bb sim.Table, eq *relation.Equi) (core.Result, error) {
		return core.Join3(t, a, bb, eq, 4, false)
	})
}

// measuredCh5 runs one Chapter 5 algorithm over the scaled setting
// L=6400, S=64.
func measuredCh5(b *testing.B, mem int, run func(t *sim.Coprocessor, tabs []sim.Table, pred relation.MultiPredicate) (core.Result, error)) {
	relA := relation.NewRelation(relation.KeyedSchema())
	relB := relation.NewRelation(relation.KeyedSchema())
	rng := relation.NewRand(9)
	for i := 0; i < 80; i++ {
		relA.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(rng.Int64N(1 << 20))})
	}
	for j := 0; j < 64; j++ {
		relB.MustAppend(relation.Tuple{relation.IntValue(int64(j)), relation.IntValue(rng.Int64N(1 << 20))})
	}
	for j := 64; j < 80; j++ {
		relB.MustAppend(relation.Tuple{relation.IntValue(1000 + int64(j)), relation.IntValue(0)})
	}
	eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		b.Fatal(err)
	}
	pred := relation.Pairwise(eq)
	var transfers uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		tabA, err := sim.LoadTable(h, cop.Sealer(), "X1", relA)
		if err != nil {
			b.Fatal(err)
		}
		tabB, err := sim.LoadTable(h, cop.Sealer(), "X2", relB)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := run(cop, []sim.Table{tabA, tabB}, pred)
		if err != nil {
			b.Fatal(err)
		}
		transfers = res.Stats.Transfers()
	}
	b.ReportMetric(float64(transfers), "transfers")
}

// BenchmarkMeasuredAlg4 executes Algorithm 4 at L=6400, S=64.
func BenchmarkMeasuredAlg4(b *testing.B) {
	measuredCh5(b, 2, core.Join4)
}

// BenchmarkMeasuredAlg5 executes Algorithm 5 at L=6400, S=64, M=8.
func BenchmarkMeasuredAlg5(b *testing.B) {
	measuredCh5(b, 8, core.Join5)
}

// BenchmarkMeasuredAlg6 executes Algorithm 6 at L=6400, S=64, M=8,
// eps=1e-10.
func BenchmarkMeasuredAlg6(b *testing.B) {
	measuredCh5(b, 8, func(t *sim.Coprocessor, tabs []sim.Table, pred relation.MultiPredicate) (core.Result, error) {
		rep, err := core.Join6(t, tabs, pred, 1e-10)
		return rep.Result, err
	})
}

// BenchmarkMeasuredAlg5OCB is Algorithm 5 with the real authenticated
// encryption, measuring the cryptographic cost per join.
func BenchmarkMeasuredAlg5OCB(b *testing.B) {
	relA := relation.GenKeyed(relation.NewRand(9), 80, 80)
	relB := relation.GenKeyed(relation.NewRand(10), 80, 80)
	eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		b.Fatal(err)
	}
	pred := relation.Pairwise(eq)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := sim.NewHost(0)
		sealer, err := sim.NewRandomOCBSealer()
		if err != nil {
			b.Fatal(err)
		}
		cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 16, Sealer: sealer, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		tabA, err := sim.LoadTable(h, sealer, "X1", relA)
		if err != nil {
			b.Fatal(err)
		}
		tabB, err := sim.LoadTable(h, sealer, "X2", relB)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := core.Join5(cop, []sim.Table{tabA, tabB}, pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasuredAlg7 executes Algorithm 7 over the same scaled setting
// as the other Chapter 5 measured benchmarks (L=6400, S=64) and reports the
// measured transfers, which must equal both core.Join7Transfers and the
// costmodel prediction exactly.
func BenchmarkMeasuredAlg7(b *testing.B) {
	relA := relation.NewRelation(relation.KeyedSchema())
	relB := relation.NewRelation(relation.KeyedSchema())
	rng := relation.NewRand(9)
	for i := 0; i < 80; i++ {
		relA.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(rng.Int64N(1 << 20))})
	}
	for j := 0; j < 64; j++ {
		relB.MustAppend(relation.Tuple{relation.IntValue(int64(j)), relation.IntValue(rng.Int64N(1 << 20))})
	}
	for j := 64; j < 80; j++ {
		relB.MustAppend(relation.Tuple{relation.IntValue(1000 + int64(j)), relation.IntValue(0)})
	}
	eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		b.Fatal(err)
	}
	var transfers uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 8, Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		tabA, err := sim.LoadTable(h, cop.Sealer(), "X1", relA)
		if err != nil {
			b.Fatal(err)
		}
		tabB, err := sim.LoadTable(h, cop.Sealer(), "X2", relB)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := core.Join7(cop, tabA, tabB, eq)
		if err != nil {
			b.Fatal(err)
		}
		transfers = res.Stats.Transfers()
		if want := core.Join7Transfers(tabA.N, tabB.N, res.OutputLen); int64(transfers) != want {
			b.Fatalf("transfers = %d, want closed form %d", transfers, want)
		}
		if want := costmodel.Alg7Cost(tabA.N, tabB.N, res.OutputLen); float64(transfers) != want {
			b.Fatalf("transfers = %d, costmodel predicts %.0f", transfers, want)
		}
	}
	b.ReportMetric(float64(transfers), "transfers")
}

// BenchmarkJoinScaling races the scan-based joins against the sort-based
// Algorithm 7 on the matched-keys workload |A| = |B| = S = n at M = 2048 —
// the workload of costmodel.CrossoverN57. n=256 always runs (the CI smoke
// sweep); the 1k and 4k points run when PPJ_BENCH_FULL=1, as scripts/bench.sh
// sets for BENCH_8.json, where alg7's transfers at n=4k must be under 25% of
// alg5's. Every alg7 point asserts measured == closed form == cost model.
func BenchmarkJoinScaling(b *testing.B) {
	sizes := []int{256}
	if os.Getenv("PPJ_BENCH_FULL") == "1" {
		sizes = append(sizes, 1024, 4096)
	}
	const mem = 2048
	algs := []struct {
		name string
		run  func(t *sim.Coprocessor, a, bb sim.Table, eq *relation.Equi) (core.Result, error)
	}{
		{"alg3", func(t *sim.Coprocessor, a, bb sim.Table, eq *relation.Equi) (core.Result, error) {
			return core.Join3(t, a, bb, eq, 1, false)
		}},
		{"alg5", func(t *sim.Coprocessor, a, bb sim.Table, eq *relation.Equi) (core.Result, error) {
			return core.Join5(t, []sim.Table{a, bb}, relation.Pairwise(eq))
		}},
		{"alg7", func(t *sim.Coprocessor, a, bb sim.Table, eq *relation.Equi) (core.Result, error) {
			return core.Join7(t, a, bb, eq)
		}},
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			for _, n := range sizes {
				b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
					relA := relation.NewRelation(relation.KeyedSchema())
					relB := relation.NewRelation(relation.KeyedSchema())
					for i := 0; i < n; i++ {
						relA.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(int64(i) * 3)})
						relB.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(int64(i) * 7)})
					}
					eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
					if err != nil {
						b.Fatal(err)
					}
					var transfers uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						h := sim.NewHost(0)
						cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: 5})
						if err != nil {
							b.Fatal(err)
						}
						tabA, err := sim.LoadTable(h, cop.Sealer(), "X1", relA)
						if err != nil {
							b.Fatal(err)
						}
						tabB, err := sim.LoadTable(h, cop.Sealer(), "X2", relB)
						if err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
						res, err := alg.run(cop, tabA, tabB, eq)
						if err != nil {
							b.Fatal(err)
						}
						if res.OutputLen != int64(n) {
							b.Fatalf("output length %d, want S=%d", res.OutputLen, n)
						}
						transfers = res.Stats.Transfers()
						if alg.name == "alg7" {
							if want := core.Join7Transfers(int64(n), int64(n), int64(n)); int64(transfers) != want {
								b.Fatalf("transfers = %d, want closed form %d", transfers, want)
							}
							if want := costmodel.Alg7Cost(int64(n), int64(n), int64(n)); float64(transfers) != want {
								b.Fatalf("transfers = %d, costmodel predicts %.0f", transfers, want)
							}
						}
					}
					b.ReportMetric(float64(transfers), "transfers")
				})
			}
		})
	}
}

// --- Substrates ---

// BenchmarkOCBSeal measures authenticated encryption of one 64-byte tuple
// on the append-style SealTo/OpenTo path: with reused destination buffers
// the steady state performs zero heap allocations per seal+open pair.
func BenchmarkOCBSeal(b *testing.B) {
	sealer, err := sim.NewRandomOCBSealer()
	if err != nil {
		b.Fatal(err)
	}
	pt := make([]byte, 64)
	var ct, out []byte
	// One warm-up round trip so the reused buffers have their steady-state
	// capacity even at -benchtime=1x.
	ct = sealer.SealTo(ct[:0], pt)
	if out, err = sealer.OpenTo(out[:0], ct); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct = sealer.SealTo(ct[:0], pt)
		out, err = sealer.OpenTo(out[:0], ct)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = out
}

// benchFleet builds p coprocessors sharing one OCB sealer on a fresh host.
func benchFleet(b *testing.B, h *sim.Host, p, mem int) ([]*sim.Coprocessor, sim.Sealer) {
	sealer, err := sim.NewRandomOCBSealer()
	if err != nil {
		b.Fatal(err)
	}
	cops := make([]*sim.Coprocessor, p)
	for w := range cops {
		cops[w], err = sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sealer, Seed: uint64(w) + 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	return cops, sealer
}

// maxDeviceTransfers is the measured critical path of a fleet execution:
// the busiest device's transfer count. Devices run concurrently in the
// modeled deployment, so this — not the fleet total — is the per-workload
// wall-clock cost in the paper's unit, and the column where the P-device
// speedup shows even when the benchmark host has fewer cores than devices.
func maxDeviceTransfers(cops []*sim.Coprocessor) uint64 {
	var max uint64
	for _, c := range cops {
		if t := c.Stats().Transfers(); t > max {
			max = t
		}
	}
	return max
}

// BenchmarkParallelSort measures the §4.4.4 parallel sort of 2048 host
// cells with real authenticated encryption at fleet sizes 1, 2 and 4. Phase
// 2 is the binary odd-even merge tree, whose total comparator count is
// strictly below the single-device bitonic network at every P — so ns/op
// must not regress with P even on a single-core host, and the per-device
// critical path (the transfers metric) still shrinks roughly with 1/P.
func BenchmarkParallelSort(b *testing.B) {
	const n = 2048
	less := func(x, y []byte) bool { return string(x) < string(y) }
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var cops []*sim.Coprocessor
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := sim.NewHost(0)
				var sealer sim.Sealer
				cops, sealer = benchFleet(b, h, p, 0)
				id := h.MustCreateRegion("s", n)
				for j := int64(0); j < n; j++ {
					h.Store(id, j, sealer.Seal([]byte(fmt.Sprintf("%08d", (j*2654435761)%100000))))
				}
				b.StartTimer()
				if err := oblivious.ParallelSort(cops, id, n, less); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(maxDeviceTransfers(cops)), "transfers")
		})
	}
}

// BenchmarkParallelJoin2 measures the partitioned Algorithm 2 (|A|=64,
// |B|=128, N=16, M=16) with real authenticated encryption at fleet sizes 1,
// 2 and 4. The A partitions are independent, so the speedup is near-linear
// until host-lock contention bites.
func BenchmarkParallelJoin2(b *testing.B) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(7), 64, 128, 16)
	eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var cops []*sim.Coprocessor
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := sim.NewHost(0)
				var sealer sim.Sealer
				cops, sealer = benchFleet(b, h, p, 16)
				tabA, err := sim.LoadTable(h, sealer, "A", relA)
				if err != nil {
					b.Fatal(err)
				}
				tabB, err := sim.LoadTable(h, sealer, "B", relB)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := core.ParallelJoin2(cops, tabA, tabB, eq, 16, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(maxDeviceTransfers(cops)), "transfers")
		})
	}
}

// BenchmarkObliviousSort measures the bitonic sort of 1024 host cells.
func BenchmarkObliviousSort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		id := h.MustCreateRegion("s", 1024)
		for j := int64(0); j < 1024; j++ {
			if err := cop.Put(id, j, []byte(fmt.Sprintf("%08d", (j*2654435761)%100000))); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := oblivious.Sort(cop, id, 1024, func(x, y []byte) bool { return string(x) < string(y) }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(oblivious.SortTransfers(1024)), "transfers")
}

// BenchmarkObliviousFilter measures the §5.2.2 decoy filter keeping 64 of
// 4096 cells.
func BenchmarkObliviousFilter(b *testing.B) {
	const omega, mu = 4096, 64
	delta := oblivious.ChooseDelta(omega, mu)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		id := h.MustCreateRegion("src", omega)
		for j := int64(0); j < omega; j++ {
			cell := []byte{0, 0}
			if j%64 == 0 {
				cell[0] = 1
			}
			if err := cop.Put(id, j, cell); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := oblivious.Filter(cop, id, omega, mu, delta,
			func(c []byte) bool { return len(c) > 0 && c[0] == 1 }, fmt.Sprintf("buf%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(oblivious.FilterTransfers(omega, mu, delta)), "transfers")
}

// BenchmarkOptimalSegment measures the n* solver on setting 1.
func BenchmarkOptimalSegment(b *testing.B) {
	var n int64
	for i := 0; i < b.N; i++ {
		n = costmodel.OptimalSegment(640_000, 6_400, 64, 1e-20)
	}
	b.ReportMetric(float64(n), "nstar")
}

// BenchmarkMLFSRPermutation measures a full 640k-index random traversal
// (Algorithm 6's order generator, §5.2.3).
func BenchmarkMLFSRPermutation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := mlfsr.NewPermutation(640_000, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := p.Next(); !ok {
				break
			}
		}
	}
}

// BenchmarkSMCGarbledPair measures one garbled-circuit equality comparison
// (16-bit keys) including oblivious transfers — the per-pair unit cost of
// the SMC baseline that the coprocessor approach beats by orders of
// magnitude.
func BenchmarkSMCGarbledPair(b *testing.B) {
	batch, err := smc.NewOTBatch()
	if err != nil {
		b.Fatal(err)
	}
	circ, err := smc.EqualityCircuit(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := smc.Garble(circ)
		if err != nil {
			b.Fatal(err)
		}
		inputs := make([]smc.Label, circ.NumInputs())
		for k := 0; k < 16; k++ {
			inputs[k], _ = g.InputLabel(k, i&1 == 1)
			l0, _ := g.InputLabel(16+k, false)
			l1, _ := g.InputLabel(16+k, true)
			lab, _, err := batch.Transfer(l0, l1, (i>>1)&1)
			if err != nil {
				b.Fatal(err)
			}
			inputs[16+k] = lab
		}
		if _, err := smc.Evaluate(g.GC, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

// BenchmarkAblationSortNetworks compares the two oblivious sorting networks
// executing on the simulator at n=1024 (see `ppjbench ablation` for the
// analytic sweep).
func BenchmarkAblationOddEvenSort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		id := h.MustCreateRegion("s", 1024)
		for j := int64(0); j < 1024; j++ {
			if err := cop.Put(id, j, []byte(fmt.Sprintf("%08d", (j*48271)%99991))); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := oblivious.SortOddEven(cop, id, 1024, func(x, y []byte) bool { return string(x) < string(y) }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(oblivious.SortOddEvenTransfers(1024)), "transfers")
	b.ReportMetric(float64(oblivious.SortTransfers(1024)), "bitonic-transfers")
}

// BenchmarkAblationFilterDelta sweeps the filter swap size around the
// chosen optimum, demonstrating unimodality on real executions.
func BenchmarkAblationFilterDelta(b *testing.B) {
	const omega, mu = 2048, 32
	chosen := oblivious.ChooseDelta(omega, mu)
	for _, delta := range []int64{oblivious.NextPow2(mu+1) - mu, chosen, oblivious.NextPow2(omega) - mu} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := sim.NewHost(0)
				cop, err := sim.NewCoprocessor(h, sim.Config{Sealer: sim.PlainSealer{}, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				id := h.MustCreateRegion("src", omega)
				for j := int64(0); j < omega; j++ {
					cell := []byte{0, 0}
					if j%(omega/mu) == 0 {
						cell[0] = 1
					}
					if err := cop.Put(id, j, cell); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := oblivious.Filter(cop, id, omega, mu, delta,
					func(c []byte) bool { return len(c) > 0 && c[0] == 1 }, fmt.Sprintf("b%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(oblivious.FilterTransfers(omega, mu, delta)), "transfers")
		})
	}
}

// BenchmarkAggregate measures the one-pass aggregation extension at
// L=6400.
func BenchmarkAggregate(b *testing.B) {
	relA := relation.GenKeyed(relation.NewRand(9), 80, 20)
	relB := relation.GenKeyed(relation.NewRand(10), 80, 20)
	eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		b.Fatal(err)
	}
	pred := relation.Pairwise(eq)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 4, Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		tabA, err := sim.LoadTable(h, cop.Sealer(), "X1", relA)
		if err != nil {
			b.Fatal(err)
		}
		tabB, err := sim.LoadTable(h, cop.Sealer(), "X2", relB)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := core.Aggregate(cop, []sim.Table{tabA, tabB}, pred, core.AggSpec{Kind: core.AggCount}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(core.AggregateTransfers([]int64{80, 80})), "transfers")
}
