package ppj

import "ppj/internal/costmodel"

// This file re-exports the paper's analytic cost model — the closed forms
// behind every table and figure of the evaluation (§4.6, §5.4).

// CostSetting is one (L, S, M) column of Table 5.2.
type CostSetting = costmodel.Setting

// Alg6CostBreakdown carries the components of Eqn 5.7.
type Alg6CostBreakdown = costmodel.Alg6Breakdown

// PaperSettings returns the three experimental settings of Table 5.2.
func PaperSettings() []CostSetting { return costmodel.Settings() }

// CostAlg1 is Algorithm 1's transfer cost: |A| + 2N|A| + 2|A||B| +
// 2|A||B|(log₂ 2N)².
func CostAlg1(a, b, n int64) float64 { return costmodel.Alg1Cost(a, b, n) }

// CostAlg2 is Algorithm 2's transfer cost: |A| + N|A| + γ|A||B|.
func CostAlg2(a, b, n, m int64) float64 { return costmodel.Alg2Cost(a, b, n, m) }

// CostAlg3 is Algorithm 3's transfer cost: |A| + |A|N + |B|(log₂|B|)² +
// 3|A||B| (the sort term dropped when preSorted).
func CostAlg3(a, b, n int64, preSorted bool) float64 {
	return costmodel.Alg3Cost(a, b, n, preSorted)
}

// CostAlg4 is Algorithm 4's communication cost (Eqn 5.2).
func CostAlg4(l, s int64) float64 { return costmodel.Alg4Cost(l, s) }

// CostAlg5 is Algorithm 5's communication cost (Eqn 5.3): S + ⌈S/M⌉L.
func CostAlg5(l, s, m int64) float64 { return costmodel.Alg5Cost(l, s, m) }

// CostAlg6 evaluates Eqn 5.7 at privacy level 1−ε.
func CostAlg6(l, s, m int64, eps float64) Alg6CostBreakdown {
	return costmodel.Alg6Cost(l, s, m, eps)
}

// CostSMC is the reference secure-multi-party-computation cost (Eqn 5.8)
// with the paper's §5.4 parameters.
func CostSMC(l, s int64) float64 {
	return costmodel.SMCCost(costmodel.DefaultSMCParams(), l, s)
}

// OptimalSegment computes Algorithm 6's n*: the largest segment size whose
// blemish probability bound stays within ε (Eqn 5.6).
func OptimalSegment(l, s, m int64, eps float64) int64 {
	return costmodel.OptimalSegment(l, s, m, eps)
}

// BlemishBound is P_M(n), the union bound on any segment exceeding M
// results (Eqn 5.5, computed exactly in log space).
func BlemishBound(l, s, m, n int64) float64 {
	return costmodel.BlemishBound(l, s, m, n)
}

// Ch4Winner labels the cheapest Chapter 4 algorithm for the Figure 4.1 map.
func Ch4Winner(b int64, alpha float64, gamma int64, equijoin bool) string {
	return costmodel.Winner(b, alpha, gamma, equijoin)
}
